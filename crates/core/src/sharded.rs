//! The sharded flooding engine: one flood, `k` worker threads.
//!
//! [`crate::FrontierFlooding`] made a round cost `O(active arcs)` — but on
//! one core. [`ShardedFlooding`] runs the *same* synchronous rounds across
//! the shards of an [`af_graph::Partition`]: each worker owns a shard's
//! nodes and advances their frontier with the frontier engine's sparse
//! bitset kernel, and workers exchange only the cross-shard activations in
//! batches at a per-round barrier built from `crossbeam` channels. Floods
//! start from an arbitrary **source set** — seeding routes every source's
//! round-1 arcs to the shard owning each arc's head, so multi-source
//! floods need no special casing anywhere in the round loop.
//!
//! Requested shard counts are clamped by [`af_graph::Partition::new`] into
//! `1 ..= min(n, MAX_SHARDS)`; [`ShardedFlooding::threads`] reports the
//! count that actually runs, and the throughput benchmark records both the
//! request (`threads_requested`) and the effective value (`threads`) in
//! every `BENCH_flooding.json` row.
//!
//! # Why sharding preserves the semantics exactly
//!
//! The amnesiac rule is *receiver-local*: arc `v → w` carries the message
//! in round `r + 1` iff `v` received in round `r` and `w → v` did **not**
//! carry it in round `r` (Definition 1.1). Both conditions are functions of
//! the messages *delivered to `v`* in round `r`. So if every arc is owned
//! by the shard of its **head** — a message lives where it is received —
//! each worker can execute its nodes' rounds exactly, consulting only its
//! own inbox; the produced arcs are then routed to the shard owning each
//! head (same-shard arcs stay local, the rest cross the barrier). No global
//! arc state is ever needed.
//!
//! # The channel barrier
//!
//! Per round, every worker sends exactly one message to every other worker:
//! its batch of boundary activations for that peer plus the worker's total
//! production count. A worker finishes its round after receiving all
//! `k − 1` peer messages — the channels *are* the barrier. Because each
//! message is tagged with its round, a fast worker racing one round ahead
//! cannot corrupt a slow one: out-of-round messages are stashed and
//! replayed. Summing the `k` production counts gives every worker the same
//! global active-arc count, so all workers take the same
//! terminate/continue/cap decision in lockstep with no shared state —
//! every [`Outcome`], round-set, receive round, and message count is
//! bit-identical to [`crate::FrontierFlooding`]'s, for **any** shard count
//! and any [`PartitionStrategy`] (the property suites enforce this).
//!
//! # Examples
//!
//! ```
//! use af_core::{FrontierFlooding, ShardedFlooding};
//! use af_graph::{generators, NodeId, Partition, PartitionStrategy};
//!
//! let g = generators::grid(8, 8);
//! let p = Partition::new(&g, PartitionStrategy::Bfs, 4);
//! let mut sharded = ShardedFlooding::new(&g, p, [NodeId::new(0)]);
//! let mut frontier = FrontierFlooding::new(&g, [NodeId::new(0)]);
//! assert_eq!(sharded.run(1000), frontier.run(1000));
//! assert_eq!(sharded.total_messages(), frontier.total_messages());
//! ```

use crate::bitset::ArcSet;
use crate::obs::{FloodEnd, FloodStart, RoundNote, RoundRecord, SharedProbe};
use af_engine::Outcome;
use af_graph::{ArcId, Graph, NodeId, Partition, PartitionStrategy};
use crossbeam::channel::{Receiver, Sender};

/// One round's traffic from one worker to one peer: the batch of arcs whose
/// heads the peer owns, plus the sender's total production count for the
/// global active-arc sum.
#[derive(Debug)]
struct RoundMsg {
    round: u32,
    produced: u64,
    batch: Vec<ArcId>,
}

/// Sentinel round number broadcast by a panicking worker so its peers fail
/// fast instead of blocking forever on a round message that will never
/// come. Unreachable as a real round: floods cap at `2n + 2` by default
/// and a `u32::MAX`-round run is physically impossible.
const POISON_ROUND: u32 = u32::MAX;

/// Per-shard mutable flooding state, owned by exactly one worker during a
/// run.
///
/// `received` is sized to the shard's *local* node count (indexed through
/// [`Partition::local_index`]), so total scratch memory across shards is
/// `O(n)`, not `O(k · n)`. The `active` bitset does span the global arc
/// space — inter-shard messages carry global [`ArcId`]s — costing
/// `k · 2m` bits total; with the [`af_graph::partition::MAX_SHARDS`]
/// clamp that stays in the hundreds of megabytes even for the most
/// pathological `--threads` request on a 1e6-edge graph, and under a
/// megabyte per shard at realistic core counts.
#[derive(Debug, Clone)]
struct ShardState {
    /// Arcs delivered to this shard's nodes in the round about to execute.
    inbox: Vec<ArcId>,
    /// Sparse membership bitset over the *global* arc space, holding
    /// exactly `inbox` while a round executes (cleared sparsely after).
    active: ArcSet,
    /// Per-owned-node scratch flag (all-false between rounds), for
    /// receiver deduplication; indexed by `Partition::local_index`.
    received: Vec<bool>,
    /// Scratch: the owned nodes that received this round.
    receivers: Vec<NodeId>,
    /// Scratch: next round's same-shard arcs.
    next_local: Vec<ArcId>,
    /// Scratch: next round's cross-shard arcs, per destination shard.
    outbound: Vec<Vec<ArcId>>,
    /// Receipt log: `(node, round)` per receipt, in chronological order.
    log: Vec<(NodeId, u32)>,
}

impl ShardState {
    fn new(local_nodes: usize, arc_count: usize, k: usize) -> Self {
        ShardState {
            inbox: Vec::new(),
            active: ArcSet::new(arc_count),
            received: vec![false; local_nodes],
            receivers: Vec::new(),
            next_local: Vec::new(),
            outbound: vec![Vec::new(); k],
            log: Vec::new(),
        }
    }
}

/// One executed round's probe material from one worker: collected on the
/// worker thread (the probe itself is `!Send` and stays with the
/// coordinator), merged across shards and replayed after the run.
struct ProbeRound {
    /// The shard-owned nodes that received this round.
    receivers: Vec<NodeId>,
    /// Arcs this worker emitted whose heads another shard owns.
    crossing: u64,
}

/// What a worker hands back after a run: enough to reconstruct the global
/// per-round message counts (identical across workers; worker 0's copy is
/// kept) and the final loop state.
struct WorkerResult {
    outcome: Outcome,
    /// Global messages delivered in each executed round of *this* run.
    per_round: Vec<u64>,
    final_round: u32,
    final_active: u64,
    /// Per-executed-round probe material (empty unless a probe is
    /// attached); same length as `per_round` when probing.
    probe_rounds: Vec<ProbeRound>,
}

/// Sharded amnesiac-flooding simulator: one flood across `k` worker
/// threads, one per shard of an [`af_graph::Partition`].
///
/// Semantically identical to [`crate::FrontierFlooding`] — same
/// [`Outcome`]s, receive rounds, and message counts for any partition and
/// shard count — but a single flood's per-round work is split across
/// shards. With `k = 1` no threads are spawned and the engine degrades to
/// the plain frontier kernel.
///
/// Like the frontier engine, a finished simulator can be
/// [`reset`](ShardedFlooding::reset) to a fresh flood while reusing every
/// allocation, which is what the batched [`crate::FloodBatch`] backend
/// does.
#[derive(Debug, Clone)]
pub struct ShardedFlooding<'g> {
    graph: &'g Graph,
    partition: Partition,
    shards: Vec<ShardState>,
    record_receipts: bool,
    round: u32,
    /// Global number of arcs in flight for the next round (sum of inbox
    /// lengths), maintained across `run` calls.
    pending_active: u64,
    total_messages: u64,
    messages_per_round: Vec<u64>,
    receipts: Vec<Vec<u32>>,
    /// Nodes with non-empty `receipts`, so reset avoids an `O(n)` sweep.
    informed: Vec<NodeId>,
    /// Round-level observer. The probe never crosses a thread boundary:
    /// workers record raw per-round material and the coordinator replays
    /// the callbacks in round order once the run returns, each round
    /// annotated with its cross-shard arc count
    /// ([`RoundNote::ShardExchange`]).
    probe: Option<SharedProbe>,
}

impl<'g> ShardedFlooding<'g> {
    /// Creates a sharded simulator over `partition` with the given
    /// initiator set; the initiators' sends are the round-1 traffic.
    /// Duplicate initiators are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if the partition was built for a different node count or if
    /// an initiator is out of range.
    pub fn new<I>(graph: &'g Graph, partition: Partition, sources: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        assert_eq!(
            partition.node_count(),
            graph.node_count(),
            "partition node count must match the graph"
        );
        let n = graph.node_count();
        let k = partition.shard_count();
        let mut sim = ShardedFlooding {
            graph,
            shards: (0..k)
                .map(|s| ShardState::new(partition.nodes_of(s).len(), graph.arc_count(), k))
                .collect(),
            partition,
            record_receipts: true,
            round: 0,
            pending_active: 0,
            total_messages: 0,
            messages_per_round: Vec::new(),
            receipts: vec![Vec::new(); n],
            informed: Vec::new(),
            probe: None,
        };
        sim.seed_sources(sources);
        sim
    }

    /// Convenience constructor: partitions `graph` into `threads` shards
    /// with `strategy` and floods from `sources`.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn with_strategy<I>(
        graph: &'g Graph,
        strategy: PartitionStrategy,
        threads: usize,
        sources: I,
    ) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        ShardedFlooding::new(graph, Partition::new(graph, strategy, threads), sources)
    }

    /// Restores the simulator to round 0 with a fresh initiator set,
    /// reusing every allocation (including each shard's bitset and
    /// scratch vectors).
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn reset<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for shard in &mut self.shards {
            // `active`, `received`, `receivers`, `next_local` and
            // `outbound` are invariantly clean between rounds; only the
            // inbox and the receipt log persist.
            shard.inbox.clear();
            shard.log.clear();
        }
        self.round = 0;
        self.pending_active = 0;
        self.total_messages = 0;
        self.messages_per_round.clear();
        for &v in &self.informed {
            self.receipts[v.index()].clear();
        }
        self.informed.clear();
        self.seed_sources(sources);
    }

    /// Routes the round-1 arcs of `sources` into per-shard inboxes (an arc
    /// is owned by the shard of its head), deduplicating sources.
    fn seed_sources<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = self.graph.node_count();
        let mut seen_sources: Vec<NodeId> = sources.into_iter().collect();
        for &v in &seen_sources {
            assert!(v.index() < n, "source {v} out of range");
        }
        seen_sources.sort_unstable();
        seen_sources.dedup();
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_started(&FloodStart {
                engine: "sharded",
                nodes: n,
                sources: &seen_sources,
            });
        }
        let mut total = 0u64;
        for &v in &seen_sources {
            for (w, out) in self.graph.incident_arcs(v) {
                let dest = self.partition.shard_of(w);
                self.shards[dest].inbox.push(out);
                total += 1;
            }
        }
        self.pending_active = total;
    }

    /// Enables or disables per-node receipt recording (enabled by
    /// default). Disable for raw speed; the batched backend does.
    pub fn set_record_receipts(&mut self, record: bool) {
        self.record_receipts = record;
    }

    /// Attaches (or with `None`, detaches) a round-level observer. Worker
    /// threads never see the probe: they collect per-round receiver lists
    /// and boundary-crossing counts, and this coordinator replays every
    /// callback in round order after [`run`](Self::run) joins the workers
    /// — so all callbacks fire on the caller's thread, after the fact.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The partition this simulator runs over.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of worker threads a run uses (the partition's shard count).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.partition.shard_count()
    }

    /// Rounds executed so far (since construction or the last reset).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Returns `true` if no arc carries the message.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.pending_active == 0
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages delivered in each executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// The arcs that will carry the message in the next round, in
    /// increasing arc order (collected across all shard inboxes).
    #[must_use]
    pub fn in_flight(&self) -> Vec<ArcId> {
        let mut arcs: Vec<ArcId> = self
            .shards
            .iter()
            .flat_map(|s| s.inbox.iter().copied())
            .collect();
        arcs.sort_unstable();
        arcs
    }

    /// Rounds at which `v` received the message (empty if receipts are not
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receipts(&self, v: NodeId) -> &[u32] {
        &self.receipts[v.index()]
    }

    /// Number of nodes that have received the message at least once, when
    /// receipts are recorded (always 0 otherwise).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Runs until termination or `max_rounds` total executed rounds,
    /// spawning one worker thread per shard (none when `k = 1`). The
    /// threads live for this call only — shard state survives across
    /// calls, but every `run` pays `k − 1` thread spawns plus `k` channel
    /// constructions up front, which is the fixed cost the per-round
    /// parallelism has to amortize.
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        let k = self.partition.shard_count();
        let record = self.record_receipts;
        let probing = self.probe.is_some();
        let start_round = self.round;
        let start_active = self.pending_active;

        let result = if k == 1 {
            run_worker(
                &mut self.shards[0],
                0,
                self.graph,
                &self.partition,
                record,
                probing,
                max_rounds,
                start_round,
                start_active,
                &[],
                None,
            )
        } else {
            let graph = self.graph;
            let partition = &self.partition;
            let shards = &mut self.shards;
            // One channel per worker; worker `i` keeps receiver `i` and a
            // sender to every peer.
            let (txs, rxs): (Vec<Sender<RoundMsg>>, Vec<Receiver<RoundMsg>>) =
                (0..k).map(|_| crossbeam::channel::unbounded()).unzip();
            let mut results = crossbeam::scope(move |scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(rxs)
                    .enumerate()
                    .map(|(me, (state, rx))| {
                        let peers: Vec<(usize, Sender<RoundMsg>)> = txs
                            .iter()
                            .enumerate()
                            .filter(|&(dest, _)| dest != me)
                            .map(|(dest, tx)| (dest, Sender::clone(tx)))
                            .collect();
                        scope.spawn(move |_| {
                            let run = std::panic::AssertUnwindSafe(|| {
                                run_worker(
                                    state,
                                    me,
                                    graph,
                                    partition,
                                    record,
                                    probing,
                                    max_rounds,
                                    start_round,
                                    start_active,
                                    &peers,
                                    Some(&rx),
                                )
                            });
                            match std::panic::catch_unwind(run) {
                                Ok(result) => result,
                                Err(payload) => {
                                    // Poison every peer: a blocked peer
                                    // still holds live senders from other
                                    // blocked peers, so dropping our
                                    // clones alone would leave them
                                    // waiting forever.
                                    for (_, tx) in &peers {
                                        let _ = tx.send(RoundMsg {
                                            round: POISON_ROUND,
                                            produced: 0,
                                            batch: Vec::new(),
                                        });
                                    }
                                    std::panic::resume_unwind(payload)
                                }
                            }
                        })
                    })
                    .collect();
                // Drop the original senders: the only live senders to any
                // worker are now its peers' clones, so if a worker dies
                // its peers observe channel disconnection (a RecvError →
                // panic) instead of blocking forever on a channel this
                // stack frame keeps alive.
                drop(txs);
                handles
                    .into_iter()
                    // af-audit: allow(no-unwrap-in-lib): a worker panic is already a
                    // bug; re-raising it beats silently dropping a shard
                    .map(|h| h.join().expect("sharded worker panicked"))
                    .collect::<Vec<WorkerResult>>()
            })
            // af-audit: allow(no-unwrap-in-lib): the vendored scope only errors when
            // a scoped thread panicked, which the join above already surfaces
            .expect("sharded scope");
            let mut first = results.remove(0);
            // Lockstep invariant: every worker took identical decisions.
            debug_assert!(results.iter().all(|r| r.outcome == first.outcome));
            // Fold every other shard's probe material into worker 0's: a
            // round's receivers are the union over shards (each node is
            // owned by exactly one shard, so no dedup is needed) and its
            // crossing count the sum.
            for other in &mut results {
                for (dst, src) in first
                    .probe_rounds
                    .iter_mut()
                    .zip(other.probe_rounds.drain(..))
                {
                    dst.receivers.extend_from_slice(&src.receivers);
                    dst.crossing += src.crossing;
                }
            }
            first
        };

        self.round = result.final_round;
        self.pending_active = result.final_active;
        self.total_messages += result.per_round.iter().sum::<u64>();
        self.messages_per_round.extend_from_slice(&result.per_round);
        if record {
            self.merge_logs();
        }
        if let Some(probe) = &self.probe {
            // Replay the run's rounds into the probe, in order, on this
            // thread. A round's `sent` count is the next round's delivery
            // count — for the last executed round that is whatever is
            // still pending for a future `run` call.
            let mut probe = probe.borrow_mut();
            for (i, pr) in result.probe_rounds.iter().enumerate() {
                // af-audit: allow(no-lossy-id-cast): i indexes rounds below the
                // u32 round cap
                let round = start_round + 1 + i as u32;
                probe.round_started(round);
                probe.round_finished(&RoundRecord {
                    round,
                    delivered: result.per_round[i],
                    frontier: pr.receivers.len(),
                    sent: result
                        .per_round
                        .get(i + 1)
                        .copied()
                        .unwrap_or(result.final_active),
                    lost: 0,
                    receivers: &pr.receivers,
                    note: RoundNote::ShardExchange {
                        crossing: pr.crossing,
                    },
                });
            }
            probe.flood_finished(&FloodEnd {
                terminated: result.outcome.is_terminated(),
                rounds: result.final_round,
                total_messages: self.total_messages,
            });
        }
        result.outcome
    }

    /// Folds every shard's receipt log into the per-node receive-round
    /// lists. Each node lives in exactly one shard and logs are
    /// chronological, so the per-node lists stay sorted.
    fn merge_logs(&mut self) {
        for shard in &mut self.shards {
            for &(v, round) in &shard.log {
                if self.receipts[v.index()].is_empty() {
                    self.informed.push(v);
                }
                self.receipts[v.index()].push(round);
            }
            shard.log.clear();
        }
    }
}

/// The per-worker round loop. With `rx = None` (single shard) the exchange
/// phase is skipped entirely.
///
/// All workers observe the same `global_active` sequence, so they take the
/// same branch at every decision point — the returned [`WorkerResult`]s
/// are identical except for the shard-local receipt logs.
#[allow(clippy::too_many_arguments)] // internal; mirrors the worker's full context
fn run_worker(
    state: &mut ShardState,
    me: usize,
    graph: &Graph,
    partition: &Partition,
    record: bool,
    probing: bool,
    max_rounds: u32,
    start_round: u32,
    start_active: u64,
    peers: &[(usize, Sender<RoundMsg>)],
    rx: Option<&Receiver<RoundMsg>>,
) -> WorkerResult {
    let mut global_active = start_active;
    let mut round = start_round;
    let mut per_round = Vec::new();
    let mut probe_rounds: Vec<ProbeRound> = Vec::new();
    let mut stash: Vec<RoundMsg> = Vec::new();
    // Emptied batch Vecs from absorbed peer messages, recycled as next
    // round's outbound buffers so the exchange phase stops allocating
    // once the flood reaches a steady state (each round hands out at most
    // k − 1 batches and takes k − 1 back in).
    let mut spare_batches: Vec<Vec<ArcId>> = Vec::new();

    let outcome = loop {
        if global_active == 0 {
            break Outcome::Terminated {
                last_active_round: round,
            };
        }
        if round >= max_rounds {
            break Outcome::CapReached {
                rounds_executed: round,
            };
        }
        round += 1;
        per_round.push(global_active);

        let ShardState {
            inbox,
            active,
            received,
            receivers,
            next_local,
            outbound,
            log,
        } = state;

        // Mark this round's deliveries and collect the shard's frontier:
        // each delivered arc's head, once.
        for &a in inbox.iter() {
            active.insert(a);
        }
        receivers.clear();
        for &a in inbox.iter() {
            let head = graph.arc_head(a);
            let li = partition.local_index(head);
            if !received[li] {
                received[li] = true;
                receivers.push(head);
            }
        }

        // Local rule, shard-locally decidable: v → w fires next iff v
        // received and w → v was not delivered (w → v's head is v, owned
        // here, so `active` knows). Route each fired arc by the
        // precomputed destination shard of its head.
        let mut produced = 0u64;
        next_local.clear();
        for buf in outbound.iter_mut() {
            if buf.capacity() == 0 {
                if let Some(spare) = spare_batches.pop() {
                    *buf = spare;
                }
            }
        }
        for &v in receivers.iter() {
            if record {
                log.push((v, round));
            }
            for &(out, dest) in partition.out_arcs(v) {
                if !active.contains(out.reversed()) {
                    produced += 1;
                    if dest as usize == me {
                        next_local.push(out);
                    } else {
                        outbound[dest as usize].push(out);
                    }
                }
            }
        }

        if probing {
            // Snapshot this round's probe material before the scratch is
            // recycled; everything routed anywhere but `next_local`
            // crossed a shard boundary.
            probe_rounds.push(ProbeRound {
                receivers: receivers.clone(),
                crossing: produced - next_local.len() as u64,
            });
        }

        // Sparse cleanup: clear exactly the bits and flags that were set.
        for &a in inbox.iter() {
            active.remove(a);
        }
        for &v in receivers.iter() {
            received[partition.local_index(v)] = false;
        }
        inbox.clear();
        core::mem::swap(inbox, next_local);

        // Exchange phase: one message to every peer (empty batches
        // included — the counts double as the termination consensus),
        // then absorb the k − 1 peer messages for this round. Messages
        // from workers racing one round ahead are stashed for their turn.
        let mut total_next = produced;
        for &(dest, ref tx) in peers {
            let msg = RoundMsg {
                round,
                produced,
                batch: core::mem::take(&mut outbound[dest]),
            };
            // af-audit: allow(no-unwrap-in-lib): a disconnected peer means a
            // worker panicked; propagating the panic is the recovery
            tx.send(msg).expect("peer worker alive");
        }
        if let Some(rx) = rx {
            let mut absorbed = 0usize;
            let mut i = 0;
            while i < stash.len() {
                if stash[i].round == round {
                    let msg = stash.swap_remove(i);
                    total_next += msg.produced;
                    inbox.extend_from_slice(&msg.batch);
                    recycle_batch(&mut spare_batches, msg.batch);
                    absorbed += 1;
                } else {
                    i += 1;
                }
            }
            while absorbed < peers.len() {
                // af-audit: allow(no-unwrap-in-lib): disconnection means a peer
                // panicked; propagating the panic is the recovery
                let msg = rx.recv().expect("peer worker alive");
                assert_ne!(msg.round, POISON_ROUND, "sharded peer worker failed");
                if msg.round == round {
                    total_next += msg.produced;
                    inbox.extend_from_slice(&msg.batch);
                    recycle_batch(&mut spare_batches, msg.batch);
                    absorbed += 1;
                } else {
                    debug_assert_eq!(msg.round, round + 1, "peers race at most one round ahead");
                    stash.push(msg);
                }
            }
        }
        global_active = total_next;
    };

    WorkerResult {
        outcome,
        per_round,
        final_round: round,
        final_active: global_active,
        probe_rounds,
    }
}

/// Clears an absorbed peer batch and keeps its allocation for reuse as a
/// future outbound buffer (non-empty capacities only — empty batches carry
/// nothing worth keeping).
fn recycle_batch(spares: &mut Vec<Vec<ArcId>>, mut batch: Vec<ArcId>) {
    if batch.capacity() > 0 {
        batch.clear();
        spares.push(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierFlooding;
    use af_graph::generators;

    /// Full-record equivalence against the frontier engine.
    fn assert_matches_frontier(
        g: &Graph,
        sources: &[NodeId],
        strategy: PartitionStrategy,
        k: usize,
    ) {
        let mut frontier = FrontierFlooding::new(g, sources.iter().copied());
        let mut sharded = ShardedFlooding::with_strategy(g, strategy, k, sources.iter().copied());
        assert_eq!(sharded.in_flight(), frontier.in_flight(), "seed arcs");
        let cap = 2 * g.node_count() as u32 + 2;
        let a = frontier.run(cap);
        let b = sharded.run(cap);
        assert_eq!(a, b, "{g} {strategy} k={k}");
        assert_eq!(frontier.total_messages(), sharded.total_messages());
        assert_eq!(frontier.messages_per_round(), sharded.messages_per_round());
        assert_eq!(frontier.informed_count(), sharded.informed_count());
        assert_eq!(frontier.round(), sharded.round());
        assert_eq!(frontier.is_terminated(), sharded.is_terminated());
        for v in g.nodes() {
            assert_eq!(frontier.receipts(v), sharded.receipts(v), "node {v}");
        }
    }

    #[test]
    fn matches_frontier_on_named_topologies() {
        for (g, s) in [
            (generators::path(7), 0usize),
            (generators::cycle(3), 0),
            (generators::cycle(6), 2),
            (generators::cycle(9), 4),
            (generators::complete(6), 1),
            (generators::petersen(), 0),
            (generators::wheel(5), 2),
            (generators::barbell(4), 0),
            (generators::grid(3, 4), 5),
            (generators::hypercube(4), 9),
            (generators::star(6), 3),
        ] {
            for strategy in PartitionStrategy::all() {
                for k in [1, 2, 3, 8] {
                    assert_matches_frontier(&g, &[NodeId::new(s)], strategy, k);
                }
            }
        }
    }

    #[test]
    fn matches_frontier_multi_source() {
        let g = generators::cycle(8);
        assert_matches_frontier(
            &g,
            &[NodeId::new(0), NodeId::new(3)],
            PartitionStrategy::Bfs,
            3,
        );
        let g = generators::petersen();
        for strategy in PartitionStrategy::all() {
            assert_matches_frontier(
                &g,
                &[NodeId::new(0), NodeId::new(7), NodeId::new(9)],
                strategy,
                4,
            );
        }
    }

    #[test]
    fn matches_frontier_on_random_families() {
        for seed in 0..6 {
            let g = generators::sparse_connected(60, (seed as usize) * 9, seed);
            let s = NodeId::new(seed as usize % g.node_count());
            for strategy in PartitionStrategy::all() {
                assert_matches_frontier(&g, &[s], strategy, 4);
            }
        }
    }

    #[test]
    fn degenerate_inputs_match_frontier() {
        // n = 1: a flood from the only node terminates immediately (no
        // arcs); k far above n clamps to one shard (see Partition::new).
        let single = af_graph::Graph::empty(1);
        for k in [1, 2, 8] {
            assert_matches_frontier(&single, &[NodeId::new(0)], PartitionStrategy::RoundRobin, k);
        }

        // n = 0 with no sources.
        let empty = af_graph::Graph::empty(0);
        for strategy in PartitionStrategy::all() {
            let mut sim = ShardedFlooding::with_strategy(&empty, strategy, 4, []);
            assert!(sim.is_terminated());
            assert_eq!(
                sim.run(10),
                Outcome::Terminated {
                    last_active_round: 0
                }
            );
        }

        // Disconnected graph: shards holding unreached components stay
        // idle for the whole run.
        let disc = af_graph::Graph::from_edges(8, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .unwrap();
        for strategy in PartitionStrategy::all() {
            for k in [1, 3, 8, 16] {
                assert_matches_frontier(&disc, &[NodeId::new(0)], strategy, k);
            }
        }

        // k > n on a real topology.
        let g = generators::cycle(5);
        assert_matches_frontier(&g, &[NodeId::new(2)], PartitionStrategy::Contiguous, 16);
    }

    #[test]
    fn out_of_range_source_panics() {
        let g = generators::cycle(4);
        let result = std::panic::catch_unwind(|| {
            ShardedFlooding::with_strategy(&g, PartitionStrategy::Bfs, 2, [NodeId::new(9)])
        });
        assert!(result.is_err());
    }

    #[test]
    fn cap_then_resume_matches_frontier() {
        let g = generators::cycle(3);
        let mut frontier = FrontierFlooding::new(&g, [NodeId::new(0)]);
        let mut sharded =
            ShardedFlooding::with_strategy(&g, PartitionStrategy::Bfs, 2, [NodeId::new(0)]);
        assert_eq!(sharded.run(1), Outcome::CapReached { rounds_executed: 1 });
        assert_eq!(frontier.run(1), Outcome::CapReached { rounds_executed: 1 });
        assert_eq!(sharded.in_flight(), frontier.in_flight());
        // Resume past the cap: both finish identically.
        assert_eq!(sharded.run(100), frontier.run(100));
        assert_eq!(sharded.total_messages(), frontier.total_messages());
        for v in g.nodes() {
            assert_eq!(sharded.receipts(v), frontier.receipts(v));
        }
        // Running a terminated simulator is a no-op.
        assert_eq!(
            sharded.run(200),
            Outcome::Terminated {
                last_active_round: 3
            }
        );
    }

    #[test]
    fn reset_reuses_allocations_correctly() {
        let g = generators::petersen();
        let mut sim =
            ShardedFlooding::with_strategy(&g, PartitionStrategy::Bfs, 3, [NodeId::new(0)]);
        assert_eq!(sim.run(100).termination_round(), Some(5));
        assert_eq!(sim.informed_count(), 10);

        sim.reset([NodeId::new(7)]);
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.total_messages(), 0);
        assert!(sim.messages_per_round().is_empty());
        let outcome = sim.run(100);
        let mut fresh = FrontierFlooding::new(&g, [NodeId::new(7)]);
        assert_eq!(outcome, fresh.run(100));
        assert_eq!(sim.total_messages(), fresh.total_messages());
        for v in g.nodes() {
            assert_eq!(sim.receipts(v), fresh.receipts(v), "node {v}");
        }

        // Reset mid-run (messages still in flight) is also clean.
        sim.reset([NodeId::new(1)]);
        sim.run(1);
        sim.reset([NodeId::new(2)]);
        let mut fresh = FrontierFlooding::new(&g, [NodeId::new(2)]);
        assert_eq!(sim.run(100), fresh.run(100));
        assert_eq!(sim.total_messages(), fresh.total_messages());
    }

    #[test]
    fn receipts_can_be_disabled() {
        let g = generators::cycle(6);
        let mut sim =
            ShardedFlooding::with_strategy(&g, PartitionStrategy::Contiguous, 2, [NodeId::new(0)]);
        sim.set_record_receipts(false);
        sim.run(100);
        assert!(sim.receipts(NodeId::new(1)).is_empty());
        assert_eq!(sim.informed_count(), 0);
        assert!(sim.total_messages() > 0);
    }

    #[test]
    fn duplicate_sources_are_collapsed() {
        let g = generators::cycle(6);
        let mut dup = ShardedFlooding::with_strategy(
            &g,
            PartitionStrategy::Bfs,
            3,
            [NodeId::new(2), NodeId::new(2)],
        );
        let mut single =
            ShardedFlooding::with_strategy(&g, PartitionStrategy::Bfs, 3, [NodeId::new(2)]);
        assert_eq!(dup.in_flight(), single.in_flight());
        assert_eq!(dup.run(100), single.run(100));
        assert_eq!(dup.total_messages(), single.total_messages());
    }

    #[test]
    fn accessors_expose_partition() {
        let g = generators::grid(4, 4);
        let sim = ShardedFlooding::with_strategy(&g, PartitionStrategy::Bfs, 4, [NodeId::new(0)]);
        assert_eq!(sim.threads(), 4);
        assert_eq!(sim.partition().shard_count(), 4);
        assert_eq!(sim.graph().node_count(), 16);
    }
}
