//! Topology detection via flooding — the application the paper's
//! introduction suggests ("to detect/test non-bipartiteness of graphs").
//!
//! Two independent detectors fall out of the theory, both implemented here:
//!
//! * **Local double-receipt rule.** On a connected graph, a node other than
//!   the source receives the flooded message twice iff the graph is
//!   non-bipartite (both parities of its double-cover lift are reachable
//!   iff the cover is connected). A node can decide this *locally*, with
//!   zero extra state beyond counting to two.
//! * **Global timing rule.** The flood terminates after round `e(source)`
//!   iff the graph is non-bipartite (Lemma 2.1 makes `e(source)` exact in
//!   the bipartite case; non-bipartite termination strictly exceeds even
//!   the diameter).

use crate::run::{flood, FloodingRun};
use af_graph::{algo, Graph, NodeId};

/// The verdict of a flooding-based bipartiteness test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyVerdict {
    /// No node saw the message twice: the graph is bipartite.
    Bipartite,
    /// Some node saw the message twice; its two receive rounds witness a
    /// closed odd walk through the source.
    NonBipartite {
        /// The first node (by id) that received twice.
        witness: NodeId,
        /// Its two receive rounds (opposite parities).
        rounds: (u32, u32),
    },
}

impl TopologyVerdict {
    /// Returns `true` for the bipartite verdict.
    #[must_use]
    pub fn is_bipartite(&self) -> bool {
        matches!(self, TopologyVerdict::Bipartite)
    }
}

/// Runs an amnesiac flood from `source` and applies the local
/// double-receipt rule.
///
/// The answer is exact for connected graphs (and refers to the reachable
/// component otherwise).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use af_core::detect::{detect_bipartiteness, TopologyVerdict};
/// use af_graph::generators;
///
/// assert!(detect_bipartiteness(&generators::cycle(6), 0.into()).is_bipartite());
///
/// let verdict = detect_bipartiteness(&generators::cycle(5), 0.into());
/// assert!(!verdict.is_bipartite());
/// ```
#[must_use]
pub fn detect_bipartiteness(graph: &Graph, source: NodeId) -> TopologyVerdict {
    let run = flood(graph, source);
    verdict_from_run(&run)
}

/// Applies the local double-receipt rule to an existing run record.
#[must_use]
pub fn verdict_from_run(run: &FloodingRun) -> TopologyVerdict {
    for v in 0..run.node_count() {
        let node = NodeId::new(v);
        let rounds = run.receive_rounds(node);
        if rounds.len() >= 2 {
            return TopologyVerdict::NonBipartite {
                witness: node,
                rounds: (rounds[0], rounds[1]),
            };
        }
    }
    TopologyVerdict::Bipartite
}

/// The global timing rule: compare the measured termination round against
/// the source eccentricity. Returns `None` when the graph is disconnected
/// (eccentricity undefined) or the run was capped.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn detect_by_timing(graph: &Graph, source: NodeId) -> Option<TopologyVerdict> {
    let ecc = algo::eccentricity(graph, source)?;
    let run = flood(graph, source);
    let t = run.termination_round()?;
    if t <= ecc {
        Some(TopologyVerdict::Bipartite)
    } else {
        // Timing alone identifies no witness node; report the last receiver.
        let witness = run
            .round_sets()
            .last()
            .and_then(|s| s.first().copied())
            .unwrap_or(source);
        let rounds = (ecc, t);
        Some(TopologyVerdict::NonBipartite { witness, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    #[test]
    fn agrees_with_graph_algorithm_on_zoo() {
        let zoo = vec![
            generators::path(8),
            generators::cycle(6),
            generators::cycle(7),
            generators::complete(5),
            generators::complete_bipartite(3, 4),
            generators::petersen(),
            generators::grid(3, 5),
            generators::wheel(6),
            generators::hypercube(3),
            generators::barbell(4),
        ];
        for g in zoo {
            let want = algo::is_bipartite(&g);
            for v in g.nodes() {
                let got = detect_bipartiteness(&g, v).is_bipartite();
                assert_eq!(got, want, "{g} from {v} (double-receipt rule)");
                let timing = detect_by_timing(&g, v).unwrap().is_bipartite();
                assert_eq!(timing, want, "{g} from {v} (timing rule)");
            }
        }
    }

    #[test]
    fn witness_rounds_have_opposite_parity() {
        let g = generators::petersen();
        match detect_bipartiteness(&g, 0.into()) {
            TopologyVerdict::NonBipartite { rounds: (a, b), .. } => {
                assert_ne!(a % 2, b % 2);
                assert!(a < b);
            }
            TopologyVerdict::Bipartite => panic!("petersen is not bipartite"),
        }
    }

    #[test]
    fn single_node_graph_is_bipartite() {
        let g = af_graph::Graph::empty(1);
        assert!(detect_bipartiteness(&g, 0.into()).is_bipartite());
    }

    #[test]
    fn seeded_random_graphs_agree() {
        for seed in 0..30u64 {
            let g = generators::sparse_connected(24, (seed % 7) as usize * 4, seed);
            let want = algo::is_bipartite(&g);
            let got = detect_bipartiteness(&g, 0.into()).is_bipartite();
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
