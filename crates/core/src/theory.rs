//! The exact-time oracle and the paper's bounds.
//!
//! # The double-cover correspondence
//!
//! Amnesiac flooding on `G` from a source set `I` is *exactly* multi-source
//! BFS on the bipartite double cover `B(G)` started from the even lifts
//! `I' = {(v, Even) : v ∈ I}`:
//!
//! * a message sent on arc `u → w` in round `r` lifts to the cover arc
//!   `(u, (r−1) mod 2) → (w, r mod 2)`, so at any fixed round each base arc
//!   has at most one active lift and the projection is a per-round
//!   bijection on message sets;
//! * all lifted sources live in the Even part, which is an independent set
//!   of the (bipartite) cover, and a same-colour multi-source amnesiac
//!   flood on a bipartite graph is a plain parallel BFS (the Lemma 2.1
//!   argument verbatim).
//!
//! Consequently node `u` receives the message in round `r` **iff**
//! `dist_B(I', (u, r mod 2)) = r`, and the flood terminates at the largest
//! finite such distance. Everything the paper proves falls out:
//!
//! * each node receives at most twice (once per parity lift) — the engine
//!   behind Theorem 3.1's round-set argument;
//! * connected bipartite `G`, single source `v`: the odd copy is a separate
//!   component, every node receives exactly once at round `d(v, u)`, and
//!   termination is at `e(v) ≤ D` (Lemma 2.1 / Corollary 2.2);
//! * connected non-bipartite `G`: the cover is connected, termination is
//!   `ecc_B((v, Even)) ≤ 2D + 1` (Theorem 3.3);
//! * message complexity is exactly `m` (bipartite) / `2m` (non-bipartite)
//!   for a single source, because every edge of the flooded cover
//!   component(s) is used exactly once.
//!
//! [`predict`] computes the full receive schedule this way — an
//! implementation of the *theory* that shares no code with the two
//! simulators, so the test suites can confront them.
//!
//! # Multi-source exact times
//!
//! The same lift answers the paper's open multi-source question exactly.
//! Write `e(S) = max_u min_{s ∈ S} d(s, u)` for the **set eccentricity**
//! ([`set_eccentricity`]). On a connected graph with a non-empty source
//! set `S`:
//!
//! * node `u`'s *first* receipt is always at round `d(S, u)`, so
//!   `T ≥ e(S)`;
//! * if `G` is bipartite **and `S` is monochromatic** (each component's
//!   sources in one of its colour classes — on a connected graph, simply
//!   all sources in one class), the lifted sources land in components of
//!   the (disconnected) cover that together contain exactly one lift per
//!   node: every node receives exactly once, at `d(S, u)`, and `T = e(S)`
//!   ([`bipartite_exact_set`] — the verbatim generalization of
//!   Lemma 2.1);
//! * otherwise — `G` non-bipartite, *or* bipartite with sources on both
//!   sides — both lifts of some node are reached at rounds of opposite
//!   parity, so `T ≥ e(S) + 1`, and the paper's odd-walk argument (taken
//!   at the nearest source) still gives `T ≤ e(S) + D + 1`.
//!
//! [`termination_bounds`] packages that window, and
//! [`exact_termination_set`] computes the exact value from the cover.
//! Note the mixed-colour caveat is real, not defensive: on the path
//! `0 – 1 – 2` with `S = {0, 1}`, `e(S) = 1` but the flood runs 2 rounds.

use af_graph::algo::{self, double_cover, Parity};
use af_graph::{Graph, NodeId};

/// The oracle's prediction of a flood's complete receive schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    receive_rounds: Vec<Vec<u32>>,
    termination_round: u32,
    messages: u64,
}

impl Prediction {
    /// Predicted rounds (sorted) at which `v` receives the message.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_rounds(&self, v: NodeId) -> &[u32] {
        &self.receive_rounds[v.index()]
    }

    /// Predicted termination round (0 when nothing is ever sent).
    #[must_use]
    pub fn termination_round(&self) -> u32 {
        self.termination_round
    }

    /// Predicted total message count.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Predicted number of distinct informed nodes (excluding sources that
    /// never hear the message back).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.receive_rounds.iter().filter(|r| !r.is_empty()).count()
    }
}

/// Predicts the complete receive schedule of an amnesiac flood on `graph`
/// from `sources`, via multi-source BFS on the bipartite double cover.
///
/// Duplicate sources are collapsed.
///
/// # Panics
///
/// Panics if a source is out of range.
///
/// # Examples
///
/// ```
/// use af_core::theory;
/// use af_graph::generators;
///
/// // Figure 2: the triangle from b terminates in 2D + 1 = 3 rounds and
/// // the two non-sources receive twice.
/// let g = generators::cycle(3);
/// let p = theory::predict(&g, [1.into()]);
/// assert_eq!(p.termination_round(), 3);
/// assert_eq!(p.receive_rounds(0.into()), &[1, 2]);
/// assert_eq!(p.receive_rounds(1.into()), &[3]);
/// ```
#[must_use]
pub fn predict<I>(graph: &Graph, sources: I) -> Prediction
where
    I: IntoIterator<Item = NodeId>,
{
    let dc = double_cover(graph);
    let lifted = sources.into_iter().map(|v| dc.lift(v, Parity::Even));
    let bfs = algo::multi_bfs(dc.graph(), lifted);

    let n = graph.node_count();
    let mut receive_rounds = vec![Vec::new(); n];
    let mut termination = 0u32;
    for u in graph.nodes() {
        let mut rounds = Vec::new();
        for p in [Parity::Even, Parity::Odd] {
            if let Some(d) = bfs.distance(dc.lift(u, p)) {
                if d > 0 {
                    rounds.push(d);
                }
            }
        }
        rounds.sort_unstable();
        termination = termination.max(rounds.last().copied().unwrap_or(0));
        receive_rounds[u.index()] = rounds;
    }

    // Every edge of the cover that joins two reached nodes is used exactly
    // once (BFS on a bipartite graph uses every intra-component edge), so
    // the message count is the number of cover edges with both endpoints
    // reached.
    let messages = dc
        .graph()
        .edge_list()
        .filter(|&(a, b)| bfs.is_reachable(a) && bfs.is_reachable(b))
        .count() as u64;

    Prediction {
        receive_rounds,
        termination_round: termination,
        messages,
    }
}

/// A reusable exact-time oracle for one graph: the bipartite double cover
/// is built **once**, and every query after that is a multi-source BFS
/// over the cached cover using epoch-stamped scratch buffers — zero
/// allocation per warm [`PredictIndex::summary`] query, `O(n + m)` time.
///
/// This is the index `af-serve` caches per registered graph: the
/// cold path (rebuild the cover per query, as the CLI one-shot does) pays
/// the cover construction and fresh BFS allocations on every call; the
/// warm path amortizes them across millions of predictions.
/// [`PredictIndex::predict`] is **bit-identical** to the free-standing
/// [`predict`] — a unit test below confronts them on the zoo.
#[derive(Debug)]
pub struct PredictIndex {
    cover: algo::DoubleCover,
    /// BFS distance per cover node; valid iff `mark` carries this query's
    /// epoch (the stamp trick makes reset O(1) instead of O(2n)).
    dist: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

/// The scalar slice of a [`Prediction`], for callers that do not need the
/// per-node receive schedule (the serve hot path). With the `serde`
/// feature it serializes field-for-field, so `af-serve` returns it on the
/// wire directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PredictSummary {
    /// Predicted termination round (0 when nothing is ever sent).
    pub termination_round: u32,
    /// Predicted total message count.
    pub total_messages: u64,
    /// Predicted number of distinct informed nodes.
    pub informed_count: usize,
}

impl PredictIndex {
    /// Builds the index for `graph` (one double-cover construction).
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        let cover = double_cover(graph);
        let cover_n = cover.graph().node_count();
        PredictIndex {
            cover,
            dist: vec![0; cover_n],
            mark: vec![0; cover_n],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    /// Node count of the base graph this index answers for.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cover.base_node_count()
    }

    /// Multi-source BFS over the cached cover from the even lifts of
    /// `sources`. After this, `self.reached(x)` / `self.dist[x]` describe
    /// the query.
    fn bfs<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wraparound: old stamps could alias the new epoch.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
        let n = self.node_count();
        for v in sources {
            assert!(v.index() < n, "source {v} out of range");
            let x = self.cover.lift(v, Parity::Even);
            if self.mark[x.index()] != self.epoch {
                self.mark[x.index()] = self.epoch;
                self.dist[x.index()] = 0;
                self.queue.push(x);
            }
        }
        let mut head = 0;
        while let Some(&x) = self.queue.get(head) {
            head += 1;
            let d = self.dist[x.index()] + 1;
            for &y in self.cover.graph().neighbors(x) {
                if self.mark[y.index()] != self.epoch {
                    self.mark[y.index()] = self.epoch;
                    self.dist[y.index()] = d;
                    self.queue.push(y);
                }
            }
        }
    }

    /// Was cover node `x` reached by the current query's BFS?
    fn reached(&self, x: NodeId) -> bool {
        self.mark[x.index()] == self.epoch
    }

    /// The round at which the current query reaches `(u, p)`, if it does
    /// and the round is positive (round 0 is the send, not a receipt).
    fn receive_round(&self, u: NodeId, p: Parity) -> Option<u32> {
        let x = self.cover.lift(u, p);
        match self.reached(x) {
            true if self.dist[x.index()] > 0 => Some(self.dist[x.index()]),
            _ => None,
        }
    }

    /// Messages of the current query: one per cover edge with both
    /// endpoints reached (see [`predict`]).
    fn messages(&self) -> u64 {
        self.cover
            .graph()
            .edge_list()
            .filter(|&(a, b)| self.reached(a) && self.reached(b))
            .count() as u64
    }

    /// The complete receive schedule — bit-identical to [`predict`] on the
    /// same graph and sources, with the cover construction amortized away.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn predict<I>(&mut self, sources: I) -> Prediction
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.bfs(sources);
        let n = self.node_count();
        let mut receive_rounds = vec![Vec::new(); n];
        let mut termination = 0u32;
        for u in (0..n).map(NodeId::new) {
            let mut rounds = Vec::new();
            for p in [Parity::Even, Parity::Odd] {
                if let Some(d) = self.receive_round(u, p) {
                    rounds.push(d);
                }
            }
            rounds.sort_unstable();
            termination = termination.max(rounds.last().copied().unwrap_or(0));
            receive_rounds[u.index()] = rounds;
        }
        Prediction {
            receive_rounds,
            termination_round: termination,
            messages: self.messages(),
        }
    }

    /// The scalar prediction only — termination round, message count,
    /// informed nodes — with **zero allocation** on a warm index. The
    /// fields agree exactly with [`PredictIndex::predict`]'s.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn summary<I>(&mut self, sources: I) -> PredictSummary
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.bfs(sources);
        let n = self.node_count();
        let mut termination = 0u32;
        let mut informed = 0usize;
        for u in (0..n).map(NodeId::new) {
            let mut any = false;
            for p in [Parity::Even, Parity::Odd] {
                if let Some(d) = self.receive_round(u, p) {
                    termination = termination.max(d);
                    any = true;
                }
            }
            informed += usize::from(any);
        }
        // Messages without the O(m) cover-edge scan [`Self::messages`]
        // does: BFS reaches every neighbor of a reached node, so a cover
        // edge with one reached endpoint has both reached — the counted
        // edge set is exactly the one induced by the reached nodes, i.e.
        // half the degree sum over the BFS queue. O(reached) per query,
        // and bit-equal to the edge filter (the cross-check tests pin it).
        let cover = self.cover.graph();
        let degree_sum: u64 = self.queue.iter().map(|&x| cover.degree(x) as u64).sum();
        PredictSummary {
            termination_round: termination,
            total_messages: degree_sum / 2,
            informed_count: informed,
        }
    }
}

/// The same prediction as [`predict`], computed by parity-constrained BFS
/// on the base graph instead of materializing the double cover.
///
/// The two implementations share no code below the `Graph` API; the test
/// suites require them to agree exactly, which guards both against
/// construction bugs in the cover and traversal bugs in the parity BFS.
///
/// # Panics
///
/// Panics if a source is out of range.
#[must_use]
pub fn predict_via_parity<I>(graph: &Graph, sources: I) -> Prediction
where
    I: IntoIterator<Item = NodeId>,
{
    let pd = algo::parity_distances(graph, sources);
    let n = graph.node_count();
    let mut receive_rounds = vec![Vec::new(); n];
    let mut termination = 0u32;
    let mut reached_even = vec![false; n];
    let mut reached_odd = vec![false; n];
    for u in graph.nodes() {
        let mut rounds = Vec::new();
        let (e, o) = pd.both(u);
        reached_even[u.index()] = e.is_some();
        reached_odd[u.index()] = o.is_some();
        for d in [e, o].into_iter().flatten() {
            if d > 0 {
                rounds.push(d);
            }
        }
        rounds.sort_unstable();
        termination = termination.max(rounds.last().copied().unwrap_or(0));
        receive_rounds[u.index()] = rounds;
    }
    // Message count: one per reached double-cover edge; a base edge {u, w}
    // contributes its (u-even, w-odd) lift when both those states are
    // reached, and its (u-odd, w-even) lift likewise.
    let mut messages = 0u64;
    for (u, w) in graph.edge_list() {
        if reached_even[u.index()] && reached_odd[w.index()] {
            messages += 1;
        }
        if reached_odd[u.index()] && reached_even[w.index()] {
            messages += 1;
        }
    }
    Prediction {
        receive_rounds,
        termination_round: termination,
        messages,
    }
}

/// The paper's termination-time upper bound for `graph`: `D` if bipartite
/// (Corollary 2.2), `2D + 1` otherwise (Theorem 3.3). `None` for
/// disconnected or empty graphs, where no single bound applies.
///
/// # Examples
///
/// ```
/// use af_core::theory::upper_bound;
/// use af_graph::generators;
///
/// assert_eq!(upper_bound(&generators::cycle(6)), Some(3));     // D
/// assert_eq!(upper_bound(&generators::cycle(3)), Some(3));     // 2D + 1
/// assert_eq!(upper_bound(&generators::petersen()), Some(5));   // 2·2 + 1
/// ```
#[must_use]
pub fn upper_bound(graph: &Graph) -> Option<u32> {
    let d = algo::diameter(graph)?;
    Some(if algo::is_bipartite(graph) {
        d
    } else {
        2 * d + 1
    })
}

/// Lemma 2.1's exact termination time for a connected bipartite graph:
/// the eccentricity of the source. `None` if the graph is disconnected or
/// not bipartite.
#[must_use]
pub fn bipartite_exact(graph: &Graph, source: NodeId) -> Option<u32> {
    if !algo::is_bipartite(graph) {
        return None;
    }
    algo::eccentricity(graph, source)
}

/// The exact termination time for any graph and source: the largest finite
/// distance from the source's even lift in the double cover.
///
/// Equals [`bipartite_exact`] (`= e(v) ≤ D`) on connected bipartite graphs.
/// On connected non-bipartite graphs it lies in `[e(v) + 1, 2D + 1]`:
/// strictly above the *source eccentricity* (the second parity of every
/// node still has to be reached), and therefore strictly above `D` when
/// flooding from a maximum-eccentricity source — the sense in which the
/// paper calls non-bipartite termination "strictly larger than D"
/// (Theorem 3.3).
#[must_use]
pub fn exact_termination(graph: &Graph, source: NodeId) -> u32 {
    predict(graph, [source]).termination_round()
}

/// The set eccentricity `e(S) = max_u min_{s ∈ S} d(s, u)`: the largest
/// multi-source BFS distance from `S`. This is the round of the *last
/// first receipt* of a multi-source flood, and hence a lower bound on its
/// termination time.
///
/// Returns `None` if `S` is empty or some node is unreachable from `S`
/// (duplicate sources are collapsed).
///
/// # Panics
///
/// Panics if a source is out of range.
#[must_use]
pub fn set_eccentricity<I>(graph: &Graph, sources: I) -> Option<u32>
where
    I: IntoIterator<Item = NodeId>,
{
    let bfs = algo::multi_bfs(graph, sources);
    if bfs.sources().is_empty() || bfs.reachable_count() < graph.node_count() {
        return None;
    }
    bfs.eccentricity()
}

/// Lemma 2.1 generalized to source sets: if `graph` is bipartite, every
/// node is reachable from `S`, and **each component's sources lie in one
/// colour class of that component**, every node receives exactly once —
/// at `d(S, u)` — and the flood terminates at exactly the set
/// eccentricity `e(S)`.
///
/// (The condition is per component because a 2-colouring's orientation is
/// arbitrary component by component; on a connected graph it reduces to
/// "all sources in one colour class".)
///
/// Returns `None` when the hypothesis fails: non-bipartite graphs, nodes
/// unreachable from `S`, an empty source set, or a component flooded from
/// both its sides (where `T > e(S)` strictly; see the [module docs](self)).
///
/// # Panics
///
/// Panics if a source is out of range.
///
/// # Examples
///
/// ```
/// use af_core::theory;
/// use af_graph::{generators, NodeId};
///
/// let g = generators::cycle(8);
/// // 0 and 4 share a colour class on C8: exact time e({0, 4}) = 2.
/// assert_eq!(theory::bipartite_exact_set(&g, [0.into(), 4.into()]), Some(2));
/// // 0 and 3 do not: the lemma does not apply.
/// assert_eq!(theory::bipartite_exact_set(&g, [0.into(), 3.into()]), None);
/// ```
#[must_use]
pub fn bipartite_exact_set<I>(graph: &Graph, sources: I) -> Option<u32>
where
    I: IntoIterator<Item = NodeId>,
{
    let sources: Vec<NodeId> = sources.into_iter().collect();
    if !is_monochromatic_bipartite(graph, &sources) {
        return None;
    }
    set_eccentricity(graph, sources)
}

/// The exactness hypothesis of [`bipartite_exact_set`], minus
/// reachability: is `graph` bipartite with each component's sources in
/// one of that component's colour classes? (False for empty `sources`.)
fn is_monochromatic_bipartite(graph: &Graph, sources: &[NodeId]) -> bool {
    if sources.is_empty() {
        return false;
    }
    let coloring = match algo::bipartiteness(graph) {
        algo::Bipartiteness::Bipartite(c) => c,
        algo::Bipartiteness::OddCycle(_) => return false,
    };
    let components = algo::connected_components(graph);
    let mut component_side: Vec<Option<algo::Side>> = vec![None; components.count()];
    for &s in sources {
        let slot = &mut component_side[components.component(s)];
        match *slot {
            None => *slot = Some(coloring.side(s)),
            Some(side) if side != coloring.side(s) => return false,
            Some(_) => {}
        }
    }
    true
}

/// The multi-source termination-time window `(lo, hi)` with
/// `lo ≤ T ≤ hi`:
///
/// * bipartite graph, per-component monochromatic `S` — `lo = hi = e(S)`
///   (the window is the exact value, [`bipartite_exact_set`]);
/// * every other connected case — `lo = e(S) + 1` (strict: a second
///   parity must still be served after the last first receipt) and
///   `hi = e(S) + D + 1` (the odd-walk bound taken at the nearest
///   source).
///
/// Returns `None` for empty source sets, for graphs not entirely
/// reachable from `S`, and — outside the exact bipartite case — for
/// disconnected graphs (the upper bound needs a finite diameter, even
/// when `S` touches every component).
///
/// # Panics
///
/// Panics if a source is out of range.
#[must_use]
pub fn termination_bounds<I>(graph: &Graph, sources: I) -> Option<(u32, u32)>
where
    I: IntoIterator<Item = NodeId>,
{
    let sources: Vec<NodeId> = sources.into_iter().collect();
    let ecc = set_eccentricity(graph, sources.iter().copied())?;
    if is_monochromatic_bipartite(graph, &sources) {
        return Some((ecc, ecc));
    }
    let d = algo::diameter(graph)?;
    Some((ecc + 1, ecc + d + 1))
}

/// The exact termination time of a multi-source flood: the largest finite
/// distance from the lifted source set `{(s, Even) : s ∈ S}` in the
/// bipartite double cover. `0` for empty source sets.
///
/// Always lies inside [`termination_bounds`] when those are defined, and
/// generalizes [`exact_termination`] (`sources = [v]`).
///
/// # Panics
///
/// Panics if a source is out of range.
#[must_use]
pub fn exact_termination_set<I>(graph: &Graph, sources: I) -> u32
where
    I: IntoIterator<Item = NodeId>,
{
    predict(graph, sources).termination_round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::flood;
    use af_graph::generators;

    #[test]
    fn oracle_matches_simulation_on_figures() {
        for (g, s) in [
            (generators::path(4), 1usize), // Figure 1
            (generators::cycle(3), 1),     // Figure 2
            (generators::cycle(6), 0),     // Figure 3
        ] {
            let p = predict(&g, [NodeId::new(s)]);
            let r = flood(&g, NodeId::new(s));
            assert_eq!(Some(p.termination_round()), r.termination_round(), "{g}");
            for v in g.nodes() {
                assert_eq!(p.receive_rounds(v), r.receive_rounds(v), "{g} node {v}");
            }
            assert_eq!(p.total_messages(), r.total_messages(), "{g}");
        }
    }

    #[test]
    fn oracle_matches_simulation_on_zoo() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::wheel(7), vec![3]),
            (generators::barbell(4), vec![0]),
            (generators::grid(4, 5), vec![7]),
            (generators::hypercube(4), vec![0]),
            (generators::complete(7), vec![2]),
            (generators::cycle(9), vec![0, 4]),
            (generators::lollipop(4, 5), vec![8]),
            (generators::path(6), vec![0, 5]),
        ];
        for (g, sources) in zoo {
            let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId::new(s)).collect();
            let p = predict(&g, srcs.iter().copied());
            let r = crate::run::AmnesiacFlooding::multi_source(&g, srcs.iter().copied()).run();
            assert!(r.terminated());
            assert_eq!(Some(p.termination_round()), r.termination_round(), "{g}");
            for v in g.nodes() {
                assert_eq!(p.receive_rounds(v), r.receive_rounds(v), "{g} node {v}");
            }
            assert_eq!(p.total_messages(), r.total_messages(), "{g}");
            assert_eq!(p.informed_count(), r.informed_count(), "{g}");
        }
    }

    #[test]
    fn both_oracle_implementations_agree() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::cycle(7), vec![2]),
            (generators::cycle(8), vec![2]),
            (generators::grid(4, 5), vec![0, 19]),
            (generators::complete(6), vec![1, 2, 3]),
            (generators::barbell(4), vec![0]),
            (generators::friendship(3), vec![0]),
            (generators::friendship(3), vec![1, 4]),
            (generators::path(9), vec![0, 8]),
        ];
        for (g, sources) in zoo {
            let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId::new(s)).collect();
            let a = predict(&g, srcs.iter().copied());
            let b = predict_via_parity(&g, srcs.iter().copied());
            assert_eq!(a, b, "{g} from {sources:?}");
        }
    }

    #[test]
    fn bipartite_exact_is_source_eccentricity() {
        let g = generators::grid(3, 5);
        for v in g.nodes() {
            let exact = bipartite_exact(&g, v).unwrap();
            assert_eq!(exact, af_graph::algo::eccentricity(&g, v).unwrap());
            let run = flood(&g, v);
            assert_eq!(run.termination_round(), Some(exact));
        }
    }

    #[test]
    fn bipartite_exact_rejects_non_bipartite() {
        assert_eq!(bipartite_exact(&generators::cycle(5), 0.into()), None);
        let disconnected = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(bipartite_exact(&disconnected, 0.into()), None);
    }

    #[test]
    fn upper_bounds_match_paper() {
        assert_eq!(upper_bound(&generators::path(5)), Some(4));
        assert_eq!(upper_bound(&generators::complete(6)), Some(3)); // 2·1+1
        assert_eq!(upper_bound(&generators::cycle(10)), Some(5));
        assert_eq!(upper_bound(&generators::cycle(11)), Some(11)); // 2·5+1
        assert_eq!(upper_bound(&Graph::empty(3)), None);
    }

    #[test]
    fn exact_termination_within_bounds_on_zoo() {
        for g in [
            generators::cycle(7),
            generators::petersen(),
            generators::wheel(6),
            generators::barbell(5),
            generators::complete(4),
            generators::torus(3, 5),
        ] {
            let bound = upper_bound(&g).unwrap();
            let d = af_graph::algo::diameter(&g).unwrap();
            for v in g.nodes() {
                let t = exact_termination(&g, v);
                assert!(t <= bound, "{g}: T = {t} > bound {bound}");
                assert!(t > d, "{g}: non-bipartite termination exceeds D");
            }
        }
    }

    #[test]
    fn nodes_receive_at_most_twice() {
        for g in [
            generators::petersen(),
            generators::complete(6),
            generators::cycle(9),
            generators::grid(4, 4),
        ] {
            let p = predict(&g, [0.into()]);
            for v in g.nodes() {
                assert!(p.receive_rounds(v).len() <= 2);
            }
        }
    }

    #[test]
    fn single_source_receive_parities_differ() {
        let g = generators::petersen();
        let p = predict(&g, [0.into()]);
        for v in g.nodes() {
            if let [a, b] = *p.receive_rounds(v) {
                assert_ne!(a % 2, b % 2, "two receipts always have opposite parity");
            }
        }
    }

    #[test]
    fn set_eccentricity_matches_definition() {
        let g = generators::grid(4, 5);
        let dm = af_graph::algo::distance_matrix(&g);
        let sets: Vec<Vec<usize>> = vec![vec![0], vec![0, 19], vec![3, 7, 12], vec![5]];
        for set in sets {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            let want = g
                .nodes()
                .map(|u| srcs.iter().filter_map(|&s| dm.get(s, u)).min().unwrap())
                .max()
                .unwrap();
            assert_eq!(set_eccentricity(&g, srcs), Some(want), "{set:?}");
        }
        // Empty source sets and unreachable nodes have no eccentricity.
        assert_eq!(set_eccentricity(&g, []), None);
        let disc = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(set_eccentricity(&disc, [0.into()]), None);
        assert_eq!(
            set_eccentricity(&disc, [0.into(), 2.into(), 3.into()]),
            Some(1)
        );
    }

    #[test]
    fn monochromatic_bipartite_sets_terminate_at_set_eccentricity() {
        // Same-colour source sets on bipartite graphs: T = e(S) exactly,
        // every node receives exactly once.
        let cases: Vec<(Graph, Vec<usize>)> = vec![
            (generators::cycle(8), vec![0, 4]),
            (generators::cycle(8), vec![0, 2, 6]),
            (generators::grid(4, 5), vec![0, 18]),
            (generators::path(9), vec![0, 4, 8]),
            (generators::hypercube(4), vec![0, 3, 5]),
        ];
        for (g, set) in cases {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            let exact = bipartite_exact_set(&g, srcs.iter().copied())
                .unwrap_or_else(|| panic!("{g} from {set:?} should be monochromatic"));
            assert_eq!(exact, set_eccentricity(&g, srcs.iter().copied()).unwrap());
            let run = crate::run::AmnesiacFlooding::multi_source(&g, srcs.iter().copied()).run();
            assert_eq!(run.termination_round(), Some(exact), "{g} from {set:?}");
            assert_eq!(run.max_receive_count(), 1, "{g} from {set:?}");
            assert_eq!(termination_bounds(&g, srcs), Some((exact, exact)));
        }
    }

    #[test]
    fn mixed_colour_bipartite_sets_exceed_set_eccentricity() {
        // The caveat the module docs call out: path 0-1-2 from {0, 1} has
        // e(S) = 1 but runs 2 rounds — Lemma 2.1 does not lift to
        // bichromatic source sets.
        let g = generators::path(3);
        let srcs = [NodeId::new(0), NodeId::new(1)];
        assert_eq!(bipartite_exact_set(&g, srcs), None);
        assert_eq!(set_eccentricity(&g, srcs), Some(1));
        assert_eq!(exact_termination_set(&g, srcs), 2);
        assert_eq!(termination_bounds(&g, srcs), Some((2, 4)));

        // Strictness holds on every mixed set of the zoo.
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::cycle(8), vec![0, 3]),
            (generators::grid(4, 5), vec![0, 1]),
            (generators::path(6), vec![0, 1, 5]),
        ];
        for (g, set) in zoo {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            assert_eq!(bipartite_exact_set(&g, srcs.iter().copied()), None);
            let e = set_eccentricity(&g, srcs.iter().copied()).unwrap();
            assert!(
                exact_termination_set(&g, srcs) > e,
                "{g} from {set:?}: T must exceed e(S)"
            );
        }
    }

    #[test]
    fn disconnected_bipartite_exactness_is_per_component_and_symmetric() {
        // Two disjoint edges: the colour orientation of each component is
        // arbitrary, so every one-source-per-component set is
        // monochromatic per component and must get the same exact answer
        // regardless of which endpoints are picked.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        for set in [[0usize, 2], [0, 3], [1, 2], [1, 3]] {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            assert_eq!(
                bipartite_exact_set(&g, srcs.iter().copied()),
                Some(1),
                "{set:?}"
            );
            assert_eq!(termination_bounds(&g, srcs.iter().copied()), Some((1, 1)));
            assert_eq!(exact_termination_set(&g, srcs), 1, "{set:?}");
        }
        // Both sources inside one component (other unreachable): no claim.
        assert_eq!(bipartite_exact_set(&g, [0.into(), 1.into()]), None);
        // Both colours of one component used: mixed, no exactness claim —
        // and the non-exact window has no finite diameter here either.
        assert_eq!(
            bipartite_exact_set(&g, [0.into(), 1.into(), 2.into()]),
            None
        );
        assert_eq!(termination_bounds(&g, [0.into(), 1.into(), 2.into()]), None);
    }

    #[test]
    fn termination_bounds_contain_exact_time_on_zoo() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::petersen(), vec![0, 7, 9]),
            (generators::cycle(7), vec![2, 5]),
            (generators::complete(6), vec![0, 1, 2]),
            (generators::wheel(7), vec![1, 4]),
            (generators::barbell(4), vec![0, 7]),
            (generators::grid(4, 5), vec![0, 1, 19]),
            (generators::friendship(3), vec![0, 2]),
            (generators::lollipop(4, 5), vec![0, 8]),
        ];
        for (g, set) in zoo {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            let (lo, hi) = termination_bounds(&g, srcs.iter().copied()).unwrap();
            let t = exact_termination_set(&g, srcs.iter().copied());
            assert!(
                lo <= t && t <= hi,
                "{g} from {set:?}: {t} not in [{lo}, {hi}]"
            );
            // The exact value agrees with a real multi-source run.
            let run = crate::run::AmnesiacFlooding::multi_source(&g, srcs.iter().copied()).run();
            assert_eq!(run.termination_round(), Some(t), "{g} from {set:?}");
        }
        // No bounds without reachability or sources.
        assert_eq!(termination_bounds(&generators::cycle(5), []), None);
        let disc = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(termination_bounds(&disc, [0.into()]), None);
    }

    #[test]
    fn whole_node_set_floods_for_one_or_two_rounds() {
        // S = V: e(S) = 0, so the window pins T to {1, 2} on any connected
        // graph with an edge (round 1 is the all-to-all exchange; a second
        // round happens iff some arc's reverse was silent, which cannot
        // recur).
        for g in [
            generators::complete(5),
            generators::cycle(6),
            generators::petersen(),
            generators::path(4),
        ] {
            let t = exact_termination_set(&g, g.nodes());
            assert!(
                (1..=2).contains(&t),
                "{g}: all-sources flood took {t} rounds"
            );
            let (lo, hi) = termination_bounds(&g, g.nodes()).unwrap();
            assert!(lo <= t && t <= hi, "{g}");
        }
    }

    #[test]
    fn predict_index_is_bit_identical_to_predict() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::petersen(), vec![0, 7, 9]),
            (generators::cycle(7), vec![2]),
            (generators::cycle(8), vec![0, 4]),
            (generators::grid(4, 5), vec![0, 19]),
            (generators::complete(6), vec![1, 2, 3]),
            (generators::barbell(4), vec![0]),
            (generators::path(9), vec![0, 8]),
            (generators::lollipop(4, 5), vec![8]),
        ];
        for (g, set) in zoo {
            let srcs: Vec<NodeId> = set.iter().map(|&s| NodeId::new(s)).collect();
            let mut index = PredictIndex::new(&g);
            assert_eq!(index.node_count(), g.node_count());
            let want = predict(&g, srcs.iter().copied());
            let got = index.predict(srcs.iter().copied());
            assert_eq!(got, want, "{g} from {set:?}");
            let summary = index.summary(srcs.iter().copied());
            assert_eq!(summary.termination_round, want.termination_round());
            assert_eq!(summary.total_messages, want.total_messages());
            assert_eq!(summary.informed_count, want.informed_count());
        }

        // One index, many queries: warm queries must stay exact — the
        // whole point of the epoch-stamped scratch.
        let g = generators::petersen();
        let mut index = PredictIndex::new(&g);
        let sets: Vec<Vec<NodeId>> = vec![
            vec![0.into()],
            vec![0.into(), 7.into(), 9.into()],
            vec![3.into()],
            g.nodes().collect(),
            vec![0.into()], // repeat: first query must be reproducible
        ];
        for srcs in sets {
            let want = predict(&g, srcs.iter().copied());
            assert_eq!(index.predict(srcs.iter().copied()), want, "{srcs:?}");
        }
    }

    #[test]
    fn predict_index_handles_empty_and_repeated_sources() {
        let g = generators::cycle(6);
        let mut index = PredictIndex::new(&g);
        let empty = index.summary([]);
        assert_eq!(empty.termination_round, 0);
        assert_eq!(empty.total_messages, 0);
        assert_eq!(empty.informed_count, 0);
        // Duplicates collapse, and a query after the empty one is unpolluted.
        let dup = index.predict([0.into(), 0.into()]);
        assert_eq!(dup, predict(&g, [0.into()]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn predict_index_rejects_out_of_range_sources() {
        let g = generators::cycle(4);
        let _ = PredictIndex::new(&g).summary([9.into()]);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = Graph::empty(1);
        let p = predict(&g, [0.into()]);
        assert_eq!(p.termination_round(), 0);
        assert_eq!(p.total_messages(), 0);
        assert_eq!(p.informed_count(), 0);
    }

    use af_graph::Graph;
}
