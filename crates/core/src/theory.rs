//! The exact-time oracle and the paper's bounds.
//!
//! # The double-cover correspondence
//!
//! Amnesiac flooding on `G` from a source set `I` is *exactly* multi-source
//! BFS on the bipartite double cover `B(G)` started from the even lifts
//! `I' = {(v, Even) : v ∈ I}`:
//!
//! * a message sent on arc `u → w` in round `r` lifts to the cover arc
//!   `(u, (r−1) mod 2) → (w, r mod 2)`, so at any fixed round each base arc
//!   has at most one active lift and the projection is a per-round
//!   bijection on message sets;
//! * all lifted sources live in the Even part, which is an independent set
//!   of the (bipartite) cover, and a same-colour multi-source amnesiac
//!   flood on a bipartite graph is a plain parallel BFS (the Lemma 2.1
//!   argument verbatim).
//!
//! Consequently node `u` receives the message in round `r` **iff**
//! `dist_B(I', (u, r mod 2)) = r`, and the flood terminates at the largest
//! finite such distance. Everything the paper proves falls out:
//!
//! * each node receives at most twice (once per parity lift) — the engine
//!   behind Theorem 3.1's round-set argument;
//! * connected bipartite `G`, single source `v`: the odd copy is a separate
//!   component, every node receives exactly once at round `d(v, u)`, and
//!   termination is at `e(v) ≤ D` (Lemma 2.1 / Corollary 2.2);
//! * connected non-bipartite `G`: the cover is connected, termination is
//!   `ecc_B((v, Even)) ≤ 2D + 1` (Theorem 3.3);
//! * message complexity is exactly `m` (bipartite) / `2m` (non-bipartite)
//!   for a single source, because every edge of the flooded cover
//!   component(s) is used exactly once.
//!
//! [`predict`] computes the full receive schedule this way — an
//! implementation of the *theory* that shares no code with the two
//! simulators, so the test suites can confront them.

use af_graph::algo::{self, double_cover, Parity};
use af_graph::{Graph, NodeId};

/// The oracle's prediction of a flood's complete receive schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    receive_rounds: Vec<Vec<u32>>,
    termination_round: u32,
    messages: u64,
}

impl Prediction {
    /// Predicted rounds (sorted) at which `v` receives the message.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_rounds(&self, v: NodeId) -> &[u32] {
        &self.receive_rounds[v.index()]
    }

    /// Predicted termination round (0 when nothing is ever sent).
    #[must_use]
    pub fn termination_round(&self) -> u32 {
        self.termination_round
    }

    /// Predicted total message count.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Predicted number of distinct informed nodes (excluding sources that
    /// never hear the message back).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.receive_rounds.iter().filter(|r| !r.is_empty()).count()
    }
}

/// Predicts the complete receive schedule of an amnesiac flood on `graph`
/// from `sources`, via multi-source BFS on the bipartite double cover.
///
/// Duplicate sources are collapsed.
///
/// # Panics
///
/// Panics if a source is out of range.
///
/// # Examples
///
/// ```
/// use af_core::theory;
/// use af_graph::generators;
///
/// // Figure 2: the triangle from b terminates in 2D + 1 = 3 rounds and
/// // the two non-sources receive twice.
/// let g = generators::cycle(3);
/// let p = theory::predict(&g, [1.into()]);
/// assert_eq!(p.termination_round(), 3);
/// assert_eq!(p.receive_rounds(0.into()), &[1, 2]);
/// assert_eq!(p.receive_rounds(1.into()), &[3]);
/// ```
#[must_use]
pub fn predict<I>(graph: &Graph, sources: I) -> Prediction
where
    I: IntoIterator<Item = NodeId>,
{
    let dc = double_cover(graph);
    let lifted = sources.into_iter().map(|v| dc.lift(v, Parity::Even));
    let bfs = algo::multi_bfs(dc.graph(), lifted);

    let n = graph.node_count();
    let mut receive_rounds = vec![Vec::new(); n];
    let mut termination = 0u32;
    for u in graph.nodes() {
        let mut rounds = Vec::new();
        for p in [Parity::Even, Parity::Odd] {
            if let Some(d) = bfs.distance(dc.lift(u, p)) {
                if d > 0 {
                    rounds.push(d);
                }
            }
        }
        rounds.sort_unstable();
        termination = termination.max(rounds.last().copied().unwrap_or(0));
        receive_rounds[u.index()] = rounds;
    }

    // Every edge of the cover that joins two reached nodes is used exactly
    // once (BFS on a bipartite graph uses every intra-component edge), so
    // the message count is the number of cover edges with both endpoints
    // reached.
    let messages = dc
        .graph()
        .edge_list()
        .filter(|&(a, b)| bfs.is_reachable(a) && bfs.is_reachable(b))
        .count() as u64;

    Prediction {
        receive_rounds,
        termination_round: termination,
        messages,
    }
}

/// The same prediction as [`predict`], computed by parity-constrained BFS
/// on the base graph instead of materializing the double cover.
///
/// The two implementations share no code below the `Graph` API; the test
/// suites require them to agree exactly, which guards both against
/// construction bugs in the cover and traversal bugs in the parity BFS.
///
/// # Panics
///
/// Panics if a source is out of range.
#[must_use]
pub fn predict_via_parity<I>(graph: &Graph, sources: I) -> Prediction
where
    I: IntoIterator<Item = NodeId>,
{
    let pd = algo::parity_distances(graph, sources);
    let n = graph.node_count();
    let mut receive_rounds = vec![Vec::new(); n];
    let mut termination = 0u32;
    let mut reached_even = vec![false; n];
    let mut reached_odd = vec![false; n];
    for u in graph.nodes() {
        let mut rounds = Vec::new();
        let (e, o) = pd.both(u);
        reached_even[u.index()] = e.is_some();
        reached_odd[u.index()] = o.is_some();
        for d in [e, o].into_iter().flatten() {
            if d > 0 {
                rounds.push(d);
            }
        }
        rounds.sort_unstable();
        termination = termination.max(rounds.last().copied().unwrap_or(0));
        receive_rounds[u.index()] = rounds;
    }
    // Message count: one per reached double-cover edge; a base edge {u, w}
    // contributes its (u-even, w-odd) lift when both those states are
    // reached, and its (u-odd, w-even) lift likewise.
    let mut messages = 0u64;
    for (u, w) in graph.edge_list() {
        if reached_even[u.index()] && reached_odd[w.index()] {
            messages += 1;
        }
        if reached_odd[u.index()] && reached_even[w.index()] {
            messages += 1;
        }
    }
    Prediction {
        receive_rounds,
        termination_round: termination,
        messages,
    }
}

/// The paper's termination-time upper bound for `graph`: `D` if bipartite
/// (Corollary 2.2), `2D + 1` otherwise (Theorem 3.3). `None` for
/// disconnected or empty graphs, where no single bound applies.
///
/// # Examples
///
/// ```
/// use af_core::theory::upper_bound;
/// use af_graph::generators;
///
/// assert_eq!(upper_bound(&generators::cycle(6)), Some(3));     // D
/// assert_eq!(upper_bound(&generators::cycle(3)), Some(3));     // 2D + 1
/// assert_eq!(upper_bound(&generators::petersen()), Some(5));   // 2·2 + 1
/// ```
#[must_use]
pub fn upper_bound(graph: &Graph) -> Option<u32> {
    let d = algo::diameter(graph)?;
    Some(if algo::is_bipartite(graph) {
        d
    } else {
        2 * d + 1
    })
}

/// Lemma 2.1's exact termination time for a connected bipartite graph:
/// the eccentricity of the source. `None` if the graph is disconnected or
/// not bipartite.
#[must_use]
pub fn bipartite_exact(graph: &Graph, source: NodeId) -> Option<u32> {
    if !algo::is_bipartite(graph) {
        return None;
    }
    algo::eccentricity(graph, source)
}

/// The exact termination time for any graph and source: the largest finite
/// distance from the source's even lift in the double cover.
///
/// Equals [`bipartite_exact`] (`= e(v) ≤ D`) on connected bipartite graphs.
/// On connected non-bipartite graphs it lies in `[e(v) + 1, 2D + 1]`:
/// strictly above the *source eccentricity* (the second parity of every
/// node still has to be reached), and therefore strictly above `D` when
/// flooding from a maximum-eccentricity source — the sense in which the
/// paper calls non-bipartite termination "strictly larger than D"
/// (Theorem 3.3).
#[must_use]
pub fn exact_termination(graph: &Graph, source: NodeId) -> u32 {
    predict(graph, [source]).termination_round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::flood;
    use af_graph::generators;

    #[test]
    fn oracle_matches_simulation_on_figures() {
        for (g, s) in [
            (generators::path(4), 1usize), // Figure 1
            (generators::cycle(3), 1),     // Figure 2
            (generators::cycle(6), 0),     // Figure 3
        ] {
            let p = predict(&g, [NodeId::new(s)]);
            let r = flood(&g, NodeId::new(s));
            assert_eq!(Some(p.termination_round()), r.termination_round(), "{g}");
            for v in g.nodes() {
                assert_eq!(p.receive_rounds(v), r.receive_rounds(v), "{g} node {v}");
            }
            assert_eq!(p.total_messages(), r.total_messages(), "{g}");
        }
    }

    #[test]
    fn oracle_matches_simulation_on_zoo() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::wheel(7), vec![3]),
            (generators::barbell(4), vec![0]),
            (generators::grid(4, 5), vec![7]),
            (generators::hypercube(4), vec![0]),
            (generators::complete(7), vec![2]),
            (generators::cycle(9), vec![0, 4]),
            (generators::lollipop(4, 5), vec![8]),
            (generators::path(6), vec![0, 5]),
        ];
        for (g, sources) in zoo {
            let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId::new(s)).collect();
            let p = predict(&g, srcs.iter().copied());
            let r = crate::run::AmnesiacFlooding::multi_source(&g, srcs.iter().copied()).run();
            assert!(r.terminated());
            assert_eq!(Some(p.termination_round()), r.termination_round(), "{g}");
            for v in g.nodes() {
                assert_eq!(p.receive_rounds(v), r.receive_rounds(v), "{g} node {v}");
            }
            assert_eq!(p.total_messages(), r.total_messages(), "{g}");
            assert_eq!(p.informed_count(), r.informed_count(), "{g}");
        }
    }

    #[test]
    fn both_oracle_implementations_agree() {
        let zoo: Vec<(Graph, Vec<usize>)> = vec![
            (generators::petersen(), vec![0]),
            (generators::cycle(7), vec![2]),
            (generators::cycle(8), vec![2]),
            (generators::grid(4, 5), vec![0, 19]),
            (generators::complete(6), vec![1, 2, 3]),
            (generators::barbell(4), vec![0]),
            (generators::friendship(3), vec![0]),
            (generators::friendship(3), vec![1, 4]),
            (generators::path(9), vec![0, 8]),
        ];
        for (g, sources) in zoo {
            let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId::new(s)).collect();
            let a = predict(&g, srcs.iter().copied());
            let b = predict_via_parity(&g, srcs.iter().copied());
            assert_eq!(a, b, "{g} from {sources:?}");
        }
    }

    #[test]
    fn bipartite_exact_is_source_eccentricity() {
        let g = generators::grid(3, 5);
        for v in g.nodes() {
            let exact = bipartite_exact(&g, v).unwrap();
            assert_eq!(exact, af_graph::algo::eccentricity(&g, v).unwrap());
            let run = flood(&g, v);
            assert_eq!(run.termination_round(), Some(exact));
        }
    }

    #[test]
    fn bipartite_exact_rejects_non_bipartite() {
        assert_eq!(bipartite_exact(&generators::cycle(5), 0.into()), None);
        let disconnected = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(bipartite_exact(&disconnected, 0.into()), None);
    }

    #[test]
    fn upper_bounds_match_paper() {
        assert_eq!(upper_bound(&generators::path(5)), Some(4));
        assert_eq!(upper_bound(&generators::complete(6)), Some(3)); // 2·1+1
        assert_eq!(upper_bound(&generators::cycle(10)), Some(5));
        assert_eq!(upper_bound(&generators::cycle(11)), Some(11)); // 2·5+1
        assert_eq!(upper_bound(&Graph::empty(3)), None);
    }

    #[test]
    fn exact_termination_within_bounds_on_zoo() {
        for g in [
            generators::cycle(7),
            generators::petersen(),
            generators::wheel(6),
            generators::barbell(5),
            generators::complete(4),
            generators::torus(3, 5),
        ] {
            let bound = upper_bound(&g).unwrap();
            let d = af_graph::algo::diameter(&g).unwrap();
            for v in g.nodes() {
                let t = exact_termination(&g, v);
                assert!(t <= bound, "{g}: T = {t} > bound {bound}");
                assert!(t > d, "{g}: non-bipartite termination exceeds D");
            }
        }
    }

    #[test]
    fn nodes_receive_at_most_twice() {
        for g in [
            generators::petersen(),
            generators::complete(6),
            generators::cycle(9),
            generators::grid(4, 4),
        ] {
            let p = predict(&g, [0.into()]);
            for v in g.nodes() {
                assert!(p.receive_rounds(v).len() <= 2);
            }
        }
    }

    #[test]
    fn single_source_receive_parities_differ() {
        let g = generators::petersen();
        let p = predict(&g, [0.into()]);
        for v in g.nodes() {
            if let [a, b] = *p.receive_rounds(v) {
                assert_ne!(a % 2, b % 2, "two receipts always have opposite parity");
            }
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = Graph::empty(1);
        let p = predict(&g, [0.into()]);
        assert_eq!(p.termination_round(), 0);
        assert_eq!(p.total_messages(), 0);
        assert_eq!(p.informed_count(), 0);
    }

    use af_graph::Graph;
}
