//! A direct bitset simulator of amnesiac flooding.
//!
//! Amnesiac flooding has a purely local arc-level transition rule that needs
//! no per-node callback machinery:
//!
//! > arc `v → w` carries the message in round `r + 1`  ⇔
//! > `v` received something in round `r` **and** arc `w → v` did **not**
//! > carry the message in round `r`.
//!
//! (`v` forwards to the complement of its senders; `w` is a sender exactly
//! when `w → v` was active.) [`FastFlooding`] iterates this rule over a
//! bitset of active arcs by scanning the whole bitset each round — simple,
//! branch-light, and an independent second implementation that the test
//! suite cross-checks against the generic [`af_engine::SyncEngine`] and the
//! frontier-sparse [`crate::FrontierFlooding`] (which does `O(active arcs)`
//! work per round instead of `O(m)` and is the hot-path engine; this
//! scan-based simulator is the benchmark baseline it is measured against).

use crate::bitset::ArcSet;
use crate::obs::{FloodEnd, FloodStart, RoundNote, RoundRecord, SharedProbe};
use af_engine::Outcome;
use af_graph::{ArcId, Graph, NodeId};

/// Bitset-based amnesiac-flooding simulator.
///
/// Tracks, optionally, the rounds at which each node received the message
/// (needed by the theory cross-checks; disable with
/// [`FastFlooding::set_record_receipts`] for raw benchmark speed).
///
/// # Examples
///
/// ```
/// use af_core::FastFlooding;
/// use af_graph::{generators, NodeId};
///
/// let g = generators::cycle(3); // Figure 2
/// let mut sim = FastFlooding::new(&g, [NodeId::new(1)]);
/// let outcome = sim.run(100);
/// assert_eq!(outcome.termination_round(), Some(3));
/// assert_eq!(sim.total_messages(), 6); // = 2m on a non-bipartite graph
/// ```
#[derive(Debug, Clone)]
pub struct FastFlooding<'g> {
    graph: &'g Graph,
    active: ArcSet,
    next: ArcSet,
    received: Vec<bool>,
    receivers: Vec<NodeId>,
    round: u32,
    total_messages: u64,
    messages_per_round: Vec<u64>,
    record_receipts: bool,
    receipts: Vec<Vec<u32>>,
    /// Round-level observer (shared by clones); `None` costs one predicted
    /// branch per round and nothing else.
    probe: Option<SharedProbe>,
}

impl<'g> FastFlooding<'g> {
    /// Creates a simulator with the given initiator set; the initiators'
    /// sends are the round-1 traffic. Duplicate initiators are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn new<I>(graph: &'g Graph, sources: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut active = ArcSet::new(graph.arc_count());
        let mut srcs: Vec<NodeId> = sources.into_iter().collect();
        srcs.sort_unstable();
        srcs.dedup();
        for &v in &srcs {
            assert!(v.index() < n, "source {v} out of range");
            for (_, arc) in graph.incident_arcs(v) {
                active.insert(arc);
            }
        }
        Self::with_active_set(graph, active)
    }

    /// Creates a simulator from an **arbitrary arc configuration**: the
    /// given arcs carry the message in round 1, regardless of whether any
    /// node "initiated" them. This is the state space the paper's
    /// Theorem 3.1 proof walks through — and, unlike node-initiated
    /// floods, arbitrary configurations can cycle forever even
    /// synchronously (a single arc on a cycle orbits indefinitely); see
    /// [`crate::arbitrary`].
    ///
    /// Duplicate arcs are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an arc index is out of range for the graph.
    pub fn from_arcs<I>(graph: &'g Graph, arcs: I) -> Self
    where
        I: IntoIterator<Item = af_graph::ArcId>,
    {
        let mut active = ArcSet::new(graph.arc_count());
        for a in arcs {
            assert!(a.index() < graph.arc_count(), "arc {a} out of range");
            active.insert(a);
        }
        Self::with_active_set(graph, active)
    }

    fn with_active_set(graph: &'g Graph, active: ArcSet) -> Self {
        let n = graph.node_count();
        FastFlooding {
            graph,
            active,
            next: ArcSet::new(graph.arc_count()),
            received: vec![false; n],
            receivers: Vec::new(),
            round: 0,
            total_messages: 0,
            messages_per_round: Vec::new(),
            record_receipts: true,
            receipts: vec![Vec::new(); n],
            probe: None,
        }
    }

    /// The raw bitset words of the active arc set — a compact
    /// configuration key for cycle detection over the synchronous
    /// dynamics.
    #[must_use]
    pub fn active_words(&self) -> &[u64] {
        self.active.words()
    }

    /// Restores the simulator to round 0 with a fresh initiator set,
    /// reusing the bitset and receipt allocations. Unlike
    /// [`crate::FrontierFlooding::reset`] this costs `O(n + m/64)` per call
    /// (the dense bitsets are cleared wholesale) — in character for the
    /// scan-everything baseline this engine is.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn reset<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.active.clear();
        self.next.clear();
        self.receivers.clear();
        self.round = 0;
        self.total_messages = 0;
        self.messages_per_round.clear();
        for rounds in &mut self.receipts {
            rounds.clear();
        }
        let n = self.graph.node_count();
        let probing = self.probe.is_some();
        for v in sources {
            assert!(v.index() < n, "source {v} out of range");
            if probing {
                // Scratch-collect the sources for the probe announcement
                // (this engine otherwise never materialises them).
                self.receivers.push(v);
            }
            for (_, arc) in self.graph.incident_arcs(v) {
                self.active.insert(arc);
            }
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_started(&FloodStart {
                engine: "fast",
                nodes: n,
                sources: &self.receivers,
            });
            self.receivers.clear();
        }
    }

    /// Enables or disables per-node receipt recording (enabled by default).
    pub fn set_record_receipts(&mut self, record: bool) {
        self.record_receipts = record;
    }

    /// Attaches (or with `None` detaches) a round-level observer; see
    /// [`crate::obs`]. The next [`FastFlooding::reset`] announces the
    /// flood to it.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Returns `true` if no arc carries the message.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.active.is_empty()
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages delivered in each executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// The arcs that will carry the message in the next round, in
    /// increasing arc order.
    #[must_use]
    pub fn in_flight(&self) -> Vec<ArcId> {
        self.active.iter().collect()
    }

    /// Rounds at which `v` received the message (empty if receipts are not
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receipts(&self, v: NodeId) -> &[u32] {
        &self.receipts[v.index()]
    }

    /// Executes one round; returns the round number, or `None` if already
    /// terminated.
    pub fn step(&mut self) -> Option<u32> {
        if self.active.is_empty() {
            return None;
        }
        self.round += 1;
        let round = self.round;
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_started(round);
        }
        let delivered = self.active.count() as u64;
        self.total_messages += delivered;
        self.messages_per_round.push(delivered);

        // Mark receivers.
        self.receivers.clear();
        for arc in self.active.iter() {
            let head = self.graph.arc_head(arc);
            if !self.received[head.index()] {
                self.received[head.index()] = true;
                self.receivers.push(head);
            }
        }

        // Local rule: v→w active next iff v received and w→v not active.
        self.next.clear();
        for &v in &self.receivers {
            if self.record_receipts {
                self.receipts[v.index()].push(round);
            }
            for (_, out) in self.graph.incident_arcs(v) {
                if !self.active.contains(out.reversed()) {
                    self.next.insert(out);
                }
            }
        }

        core::mem::swap(&mut self.active, &mut self.next);
        for &v in &self.receivers {
            self.received[v.index()] = false;
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_finished(&RoundRecord {
                round,
                delivered,
                frontier: self.receivers.len(),
                // The bitset count is an extra `O(m/64)` sweep, paid only
                // when someone is listening.
                sent: self.active.count() as u64,
                lost: 0,
                receivers: &self.receivers,
                note: RoundNote::None,
            });
        }
        Some(round)
    }

    /// Runs until termination or `max_rounds`.
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        let outcome = loop {
            if self.round >= max_rounds {
                break if self.active.is_empty() {
                    Outcome::Terminated {
                        last_active_round: self.round,
                    }
                } else {
                    Outcome::CapReached {
                        rounds_executed: self.round,
                    }
                };
            }
            if self.step().is_none() {
                break Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        };
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_finished(&FloodEnd {
                terminated: self.active.is_empty(),
                rounds: self.round,
                total_messages: self.total_messages,
            });
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AmnesiacFloodingProtocol;
    use af_engine::SyncEngine;
    use af_graph::generators;

    fn cross_check(g: &Graph, sources: &[NodeId]) {
        let mut fast = FastFlooding::new(g, sources.iter().copied());
        let mut engine = SyncEngine::new(g, AmnesiacFloodingProtocol, sources.iter().copied());
        loop {
            let in_flight_fast = fast.in_flight();
            assert_eq!(
                in_flight_fast.as_slice(),
                engine.in_flight(),
                "round {}",
                fast.round()
            );
            let a = fast.step();
            let b = engine.step();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            assert!(fast.round() < 1000, "runaway");
        }
        assert_eq!(fast.total_messages(), engine.total_messages());
        for v in g.nodes() {
            assert_eq!(fast.receipts(v), engine.receipts(v), "node {v}");
        }
    }

    #[test]
    fn matches_generic_engine_on_named_topologies() {
        for (g, s) in [
            (generators::path(7), 0usize),
            (generators::path(7), 3),
            (generators::cycle(3), 0),
            (generators::cycle(6), 2),
            (generators::cycle(9), 4),
            (generators::complete(6), 1),
            (generators::petersen(), 0),
            (generators::wheel(5), 2),
            (generators::barbell(4), 0),
            (generators::grid(3, 4), 5),
            (generators::hypercube(4), 9),
        ] {
            cross_check(&g, &[NodeId::new(s)]);
        }
    }

    #[test]
    fn matches_generic_engine_multi_source() {
        let g = generators::cycle(8);
        cross_check(&g, &[NodeId::new(0), NodeId::new(3)]);
        let g = generators::petersen();
        cross_check(&g, &[NodeId::new(0), NodeId::new(7), NodeId::new(9)]);
        let g = generators::path(4);
        cross_check(&g, &[NodeId::new(0), NodeId::new(3)]);
    }

    #[test]
    fn figure_round_counts() {
        let g = generators::path(4);
        assert_eq!(
            FastFlooding::new(&g, [NodeId::new(1)])
                .run(100)
                .termination_round(),
            Some(2)
        );
        let g = generators::cycle(3);
        assert_eq!(
            FastFlooding::new(&g, [NodeId::new(0)])
                .run(100)
                .termination_round(),
            Some(3)
        );
        let g = generators::cycle(6);
        assert_eq!(
            FastFlooding::new(&g, [NodeId::new(0)])
                .run(100)
                .termination_round(),
            Some(3)
        );
    }

    #[test]
    fn message_complexity_is_m_on_bipartite_and_2m_otherwise() {
        // Exact message counts follow from the double-cover argument.
        for (g, bip) in [
            (generators::path(9), true),
            (generators::cycle(8), true),
            (generators::grid(4, 5), true),
            (generators::cycle(7), false),
            (generators::complete(5), false),
            (generators::petersen(), false),
        ] {
            let mut f = FastFlooding::new(&g, [NodeId::new(0)]);
            f.run(1000);
            let m = g.edge_count() as u64;
            let expect = if bip { m } else { 2 * m };
            assert_eq!(f.total_messages(), expect, "{g}");
        }
    }

    #[test]
    fn receipts_can_be_disabled() {
        let g = generators::cycle(6);
        let mut f = FastFlooding::new(&g, [NodeId::new(0)]);
        f.set_record_receipts(false);
        f.run(100);
        assert!(f.receipts(NodeId::new(1)).is_empty());
        assert!(f.total_messages() > 0);
    }

    #[test]
    fn cap_behaviour() {
        let g = generators::cycle(3);
        let mut f = FastFlooding::new(&g, [NodeId::new(0)]);
        assert_eq!(f.run(1), Outcome::CapReached { rounds_executed: 1 });
        assert_eq!(
            f.run(100),
            Outcome::Terminated {
                last_active_round: 3
            }
        );
        // Stepping a terminated simulator returns None.
        assert_eq!(f.step(), None);
    }

    #[test]
    fn empty_source_set_is_terminated() {
        let g = generators::cycle(4);
        let mut f = FastFlooding::new(&g, []);
        assert!(f.is_terminated());
        assert_eq!(
            f.run(10),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
    }

    #[test]
    fn messages_per_round_sums_to_total() {
        let g = generators::petersen();
        let mut f = FastFlooding::new(&g, [NodeId::new(0)]);
        f.run(100);
        let sum: u64 = f.messages_per_round().iter().sum();
        assert_eq!(sum, f.total_messages());
        assert_eq!(f.total_messages(), 30); // 2m, Petersen has m = 15
    }
}
