//! The bit-parallel (SIMD-within-a-register) amnesiac-flooding engine.
//!
//! One amnesiac flood is pure set algebra over arcs: the next generation is
//! `next(v→w) = received(v) AND NOT active(w→v)` (the paper's local rule).
//! Nothing in that formula couples different floods — so up to [`LANES`]
//! **independent** floods, each with its own source set, can occupy the 64
//! bit *lanes* of a single `u64` per arc and advance together with word-wide
//! `AND`/`OR`/`ANDNOT`, in **one CSR pass per round**:
//!
//! * `cur[a]` — the lane mask of floods whose message arc `a` carries this
//!   round (one word per arc, touched sparsely via an explicit active list);
//! * `recv[v] = OR over in-arcs a of cur[a]` — the lanes in which node `v`
//!   receives this round;
//! * `next[v→w] = recv[v] & !cur[w→v]` — the amnesiac rule, all lanes at
//!   once.
//!
//! Bit `l` of every word evolves *exactly* as [`crate::FrontierFlooding`]'s
//! active set for flood `l` (the differential suites pin this lane for
//! lane), so per-lane receive rounds, message counts and termination rounds
//! are bit-identical to a sequential run — but arcs shared by several
//! frontiers are paid for **once**, and per-round bookkeeping is amortized
//! over the whole batch. Rounds where the union wavefront covers a large
//! fraction of the arcs drop the active list and stream the whole word
//! array sequentially instead (see `DENSE_ACTIVITY_DIVISOR` — the
//! sparse/dense switch of direction-optimizing BFS, applied to lane
//! words). Finished lanes simply vanish from the words
//! ([`BitLaneFlooding::live_lanes`] tracks them), so a batch mixing a
//! 3-round bipartite lane with a `2D + 1`-round lane costs nothing extra
//! for the early finisher.
//!
//! This is the engine behind [`crate::FloodBatch::run_many`], which chunks
//! an arbitrary flood list into groups of up to 64 lanes — the raw-speed
//! substrate for whole-graph `T(s)` sweeps and set-eccentricity scans.

use crate::obs::{FloodEnd, FloodStart, RoundNote, RoundRecord, SharedProbe};
use af_engine::Outcome;
use af_graph::{ArcId, Graph, NodeId};

/// Maximum number of floods one [`BitLaneFlooding`] advances at once: the
/// bit width of the per-arc state word.
pub const LANES: usize = 64;

/// Rounds whose active list reaches `arc_count / DENSE_ACTIVITY_DIVISOR`
/// entries run in *dense* mode: instead of walking the sparse list (whose
/// per-entry cost is dominated by scattered reads into the `2m`-word
/// state array once it outgrows cache), the round streams the whole arc
/// array sequentially — delivery is one linear sweep, and emission walks
/// edge *pairs* (`reversed()` is `index ^ 1`, so both directions of an
/// edge share a cache line). Same rule, same words, bit-identical
/// results; only the iteration order changes. Low-activity rounds (narrow
/// wavefronts, long-diameter graphs) keep the sparse path. The divisor
/// sits at the measured break-even: a dense round's fixed cost (two
/// linear sweeps of the arc array) matches a sparse round walking about
/// 1/16 of the arcs through scattered reads.
const DENSE_ACTIVITY_DIVISOR: usize = 16;

/// Sentinel in the per-lane termination table: lane still live.
const UNFINISHED: u32 = u32::MAX;

/// Bit-parallel amnesiac-flooding simulator: up to [`LANES`] independent
/// floods in the bit lanes of one `u64` per arc.
///
/// Construction and [`BitLaneFlooding::reset`] take one source set **per
/// lane**; every per-lane record ([`lane_outcome`](Self::lane_outcome),
/// [`lane_messages`](Self::lane_messages),
/// [`lane_receipts`](Self::lane_receipts)) is bit-identical to running
/// [`crate::FrontierFlooding`] on that lane's set alone.
///
/// # Examples
///
/// ```
/// use af_core::BitLaneFlooding;
/// use af_graph::{generators, NodeId};
///
/// // Two lanes on C6: lane 0 floods from node 0, lane 1 from {0, 3}.
/// let g = generators::cycle(6);
/// let mut sim = BitLaneFlooding::new(
///     &g,
///     [vec![NodeId::new(0)], vec![NodeId::new(0), NodeId::new(3)]],
/// );
/// let outcome = sim.run(100);
/// assert!(outcome.is_terminated());
/// assert_eq!(sim.lane_outcome(0).termination_round(), Some(3)); // D = 3
/// assert_eq!(sim.lane_outcome(1).termination_round(), Some(3)); // bichromatic set
/// assert_eq!(sim.lane_messages(0), 6); // = m on a bipartite graph
/// ```
#[derive(Debug, Clone)]
pub struct BitLaneFlooding<'g> {
    graph: &'g Graph,
    /// Lane mask per arc (indexed by arc index): bit `l` set iff arc
    /// carries lane `l`'s message this round. Dense storage; sparse
    /// rounds touch only the active list's arcs, dense rounds sweep the
    /// whole array sequentially.
    cur: Vec<u64>,
    /// The nonzero-word arcs as explicit `(arc, word)` pairs; `word` is a
    /// snapshot of `cur[arc]` so the hot loop never re-reads the dense
    /// array for its own generation. Only materialized while
    /// `active_listed` — dense rounds track just the count and rebuild
    /// the list on the next dense→sparse transition.
    active: Vec<(ArcId, u64)>,
    /// Number of arcs currently carrying any lane's message (`==
    /// active.len()` whenever `active_listed`).
    active_count: usize,
    /// Whether `active` is materialized and in sync with `cur`. Sparse
    /// rounds keep it true; dense rounds clear it (they sweep `cur`
    /// directly and only count).
    active_listed: bool,
    /// Scratch list for the next generation.
    next: Vec<(ArcId, u64)>,
    /// Scratch word array for dense rounds: the next generation is built
    /// here by a sequential edge-pair sweep, then pointer-swapped with
    /// `cur`. Contents between dense rounds are stale and never read —
    /// every slot is overwritten before the next swap.
    next_words: Vec<u64>,
    /// Per-node lane mask accumulated during delivery; all-zero between
    /// rounds (doubles as the dedup flag for `receivers`).
    recv: Vec<u64>,
    /// Nodes that received (in any lane) in the round being executed.
    receivers: Vec<NodeId>,
    /// Precomputed arc heads, so delivery is one array read per arc.
    heads: Vec<NodeId>,
    lane_count: usize,
    /// Lanes with at least one active arc.
    live: u64,
    round: u32,
    /// Per-lane termination round ([`UNFINISHED`] while live).
    term: [u32; LANES],
    /// Per-lane delivered-message totals, bit-sliced: bit `l` of
    /// `message_planes[i]` is bit `i` of lane `l`'s count. Adding a
    /// delivered word is an amortized-O(1) carry-save ripple over the
    /// planes instead of a loop over the word's set bits;
    /// [`Self::lane_messages`] reassembles the integer on demand.
    message_planes: [u64; LANES],
    total_messages: u64,
    messages_per_round: Vec<u64>,
    record_receipts: bool,
    /// Per-node `(round, lane mask)` receipt pairs: node received in round
    /// `r` in exactly the lanes of the mask.
    receipts: Vec<Vec<(u32, u64)>>,
    /// Nodes with non-empty `receipts`, for sparse reset.
    informed: Vec<NodeId>,
    /// Round-level observer (shared by clones); `None` costs one predicted
    /// branch per round and nothing else. Records report **union**
    /// dynamics across lanes; the note says which kernel the round ran.
    probe: Option<SharedProbe>,
}

impl<'g> BitLaneFlooding<'g> {
    /// Creates a simulator with one initiator set per lane (at most
    /// [`LANES`] of them); lane `l`'s initiators' sends are lane `l`'s
    /// round-1 traffic. Duplicate initiators within a lane are collapsed.
    /// A lane whose set is empty terminates at round 0.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] lanes are given or an initiator is
    /// out of range.
    pub fn new<I>(graph: &'g Graph, lane_sources: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let heads = (0..graph.arc_count())
            .map(|i| graph.arc_head(ArcId::from_index(i)))
            .collect();
        let mut sim = BitLaneFlooding {
            graph,
            cur: vec![0; graph.arc_count()],
            active: Vec::new(),
            active_count: 0,
            active_listed: true,
            next: Vec::new(),
            next_words: vec![0; graph.arc_count()],
            recv: vec![0; n],
            receivers: Vec::new(),
            heads,
            lane_count: 0,
            live: 0,
            round: 0,
            term: [UNFINISHED; LANES],
            message_planes: [0; LANES],
            total_messages: 0,
            messages_per_round: Vec::new(),
            record_receipts: true,
            receipts: vec![Vec::new(); n],
            informed: Vec::new(),
            probe: None,
        };
        sim.seed_lanes(lane_sources);
        sim
    }

    /// Restores the simulator to round 0 with fresh lane source sets,
    /// **reusing every allocation**. Costs time proportional to the state
    /// the previous batch touched, not to the graph.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] lanes are given or an initiator is
    /// out of range.
    pub fn reset<I>(&mut self, lane_sources: I)
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = NodeId>,
    {
        if self.active_listed {
            for &(a, _) in &self.active {
                self.cur[a.index()] = 0;
            }
        } else {
            // Dense rounds stopped maintaining the list; the sweep
            // touched (and the next one would overwrite) the whole
            // array, so clear it wholesale.
            self.cur.fill(0);
        }
        self.active.clear();
        self.active_listed = true;
        self.active_count = 0;
        self.next.clear();
        self.receivers.clear();
        self.round = 0;
        self.live = 0;
        self.term = [UNFINISHED; LANES];
        self.message_planes = [0; LANES];
        self.total_messages = 0;
        self.messages_per_round.clear();
        for &v in &self.informed {
            self.receipts[v.index()].clear();
        }
        self.informed.clear();
        self.seed_lanes(lane_sources);
    }

    /// ORs each lane's round-1 arcs into the state words and rebuilds the
    /// active list (an arc is listed once however many lanes seed it).
    fn seed_lanes<I>(&mut self, lane_sources: I)
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = NodeId>,
    {
        let n = self.graph.node_count();
        let probing = self.probe.is_some();
        let mut lane = 0usize;
        for set in lane_sources {
            assert!(lane < LANES, "at most {LANES} lanes per batch");
            let bit = 1u64 << lane;
            for v in set {
                assert!(v.index() < n, "source {v} out of range");
                if probing {
                    // Scratch-collect all lanes' sources for the probe
                    // announcement (union view, like every other record
                    // this engine reports).
                    self.receivers.push(v);
                }
                for (_, out) in self.graph.incident_arcs(v) {
                    let w = &mut self.cur[out.index()];
                    if *w == 0 {
                        self.active.push((out, 0));
                    }
                    *w |= bit;
                }
            }
            lane += 1;
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_started(&FloodStart {
                engine: "bitlane",
                nodes: n,
                sources: &self.receivers,
            });
            self.receivers.clear();
        }
        self.lane_count = lane;
        // Snapshot the final words (several lanes may share an arc) and
        // derive the live mask.
        for entry in &mut self.active {
            entry.1 = self.cur[entry.0.index()];
            self.live |= entry.1;
        }
        self.active_count = self.active.len();
        // Lanes that seeded no arc (empty set, isolated sources) are
        // terminated floods of round 0.
        for l in 0..lane {
            if self.live >> l & 1 == 0 {
                self.term[l] = 0;
            }
        }
    }

    /// Enables or disables per-node receipt recording (enabled by
    /// default). Disable for raw benchmark speed; [`crate::FloodBatch`]
    /// does.
    pub fn set_record_receipts(&mut self, record: bool) {
        self.record_receipts = record;
    }

    /// Attaches (or with `None`, detaches) a round-level observer. Records
    /// describe the **union** wavefront across all lanes — delivered
    /// message counts sum over lanes, receivers are nodes reached in any
    /// lane — and each round's note says which kernel executed it
    /// ([`RoundNote::DenseSweep`] or [`RoundNote::SparseWalk`]).
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of lanes seeded by the last construction/reset.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    /// Mask of lanes that still have an arc in flight.
    #[must_use]
    pub fn live_lanes(&self) -> u64 {
        self.live
    }

    /// Rounds executed so far (since construction or the last reset).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Returns `true` if no arc carries any lane's message.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.active_count == 0
    }

    /// Total messages delivered so far, summed over all lanes.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// All-lane messages delivered in each executed round (index 0 =
    /// round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// Messages delivered by lane `lane`'s flood so far.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a seeded lane.
    #[must_use]
    pub fn lane_messages(&self, lane: usize) -> u64 {
        assert!(lane < self.lane_count, "lane {lane} not seeded");
        self.message_planes
            .iter()
            .enumerate()
            .map(|(i, &plane)| (plane >> lane & 1) << i)
            .sum()
    }

    /// Adds one delivered word to the bit-sliced per-lane message
    /// counters: a half-adder ripple whose carry word empties after
    /// amortized O(1) planes (a binary counter incremented per lane).
    #[inline]
    fn add_message_word(planes: &mut [u64; LANES], mut w: u64) {
        for plane in planes.iter_mut() {
            if w == 0 {
                break;
            }
            let carry = *plane & w;
            *plane ^= w;
            w = carry;
        }
        debug_assert_eq!(w, 0, "per-lane message counter overflow");
    }

    /// Lane `lane`'s flood outcome: terminated with its own last active
    /// round, or cap-reached at the batch's executed round count if the
    /// lane was still live when the driver stopped stepping.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a seeded lane.
    #[must_use]
    pub fn lane_outcome(&self, lane: usize) -> Outcome {
        assert!(lane < self.lane_count, "lane {lane} not seeded");
        match self.term[lane] {
            UNFINISHED => Outcome::CapReached {
                rounds_executed: self.round,
            },
            t => Outcome::Terminated {
                last_active_round: t,
            },
        }
    }

    /// The raw `(round, lane mask)` receipt pairs of node `v`, in round
    /// order: `v` received in that round in exactly the lanes of the mask.
    /// Empty if receipts are not recorded.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receipt_masks(&self, v: NodeId) -> &[(u32, u64)] {
        &self.receipts[v.index()]
    }

    /// Rounds at which `v` received lane `lane`'s message, in increasing
    /// order (the per-lane view of [`BitLaneFlooding::receipt_masks`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `lane` is not a seeded lane.
    #[must_use]
    pub fn lane_receipts(&self, v: NodeId, lane: usize) -> Vec<u32> {
        assert!(lane < self.lane_count, "lane {lane} not seeded");
        self.receipts[v.index()]
            .iter()
            .filter(|&&(_, mask)| mask >> lane & 1 == 1)
            .map(|&(r, _)| r)
            .collect()
    }

    /// Number of nodes that have received any lane's message at least
    /// once, when receipts are recorded (always 0 otherwise).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Executes one round for every live lane; returns the round number,
    /// or `None` if all lanes have terminated.
    ///
    /// Rounds dispatch between two bit-identical implementations of the
    /// same word-wide rule (see `DENSE_ACTIVITY_DIVISOR`): a sparse
    /// active-list walk when few arcs carry messages, and a sequential
    /// whole-array sweep when the union wavefront is wide.
    pub fn step(&mut self) -> Option<u32> {
        if self.active_count == 0 {
            return None;
        }
        self.round += 1;
        let round = self.round;
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_started(round);
        }
        let dense = self.active_count >= self.cur.len() / DENSE_ACTIVITY_DIVISOR;
        let live_next = if dense {
            self.step_dense(round)
        } else {
            if !self.active_listed {
                self.relist_active();
            }
            self.step_sparse(round)
        };

        // Lanes silent for the first time terminated in this round (a dead
        // lane can never resurrect: `recv` only draws from `cur`).
        let mut died = self.live & !live_next;
        while died != 0 {
            self.term[died.trailing_zeros() as usize] = round;
            died &= died - 1;
        }
        self.live = live_next;
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_finished(&RoundRecord {
                round,
                delivered: *self.messages_per_round.last().unwrap_or(&0),
                frontier: self.receivers.len(),
                sent: self.active_count as u64,
                lost: 0,
                receivers: &self.receivers,
                note: if dense {
                    RoundNote::DenseSweep
                } else {
                    RoundNote::SparseWalk
                },
            });
        }
        Some(round)
    }

    /// Sparse round: touch only the arcs on the active list. Returns the
    /// mask of lanes still live after the round.
    fn step_sparse(&mut self, round: u32) -> u64 {
        // Delivery: one pass over the active arcs accumulates each head's
        // lane mask and the per-lane message counts.
        self.receivers.clear();
        let mut delivered = 0u64;
        for i in 0..self.active.len() {
            let (a, w) = self.active[i];
            let head = self.heads[a.index()];
            if self.recv[head.index()] == 0 {
                self.receivers.push(head);
            }
            self.recv[head.index()] |= w;
            delivered += u64::from(w.count_ones());
            Self::add_message_word(&mut self.message_planes, w);
        }
        self.total_messages += delivered;
        self.messages_per_round.push(delivered);

        // Emission: the amnesiac rule for all lanes at once. Distinct
        // receivers emit distinct out-arcs, so `next` needs no dedup.
        self.next.clear();
        let mut live_next = 0u64;
        for i in 0..self.receivers.len() {
            let v = self.receivers[i];
            let mask = self.recv[v.index()];
            if self.record_receipts {
                if self.receipts[v.index()].is_empty() {
                    self.informed.push(v);
                }
                self.receipts[v.index()].push((round, mask));
            }
            for (_, out) in self.graph.incident_arcs(v) {
                let nw = mask & !self.cur[out.reversed().index()];
                if nw != 0 {
                    self.next.push((out, nw));
                    live_next |= nw;
                }
            }
        }

        // Swap generations with sparse word updates, and zero the per-node
        // scratch masks for the next round.
        for &(a, _) in &self.active {
            self.cur[a.index()] = 0;
        }
        for &(a, w) in &self.next {
            self.cur[a.index()] = w;
        }
        core::mem::swap(&mut self.active, &mut self.next);
        self.active_count = self.active.len();
        for &v in &self.receivers {
            self.recv[v.index()] = 0;
        }
        live_next
    }

    /// Rebuilds the sparse active list from `cur` after a run of dense
    /// rounds (which only count): one sequential scan, paid once per
    /// dense→sparse transition.
    fn relist_active(&mut self) {
        self.active.clear();
        for idx in 0..self.cur.len() {
            let w = self.cur[idx];
            if w != 0 {
                self.active.push((ArcId::from_index(idx), w));
            }
        }
        self.active_listed = true;
        debug_assert_eq!(self.active.len(), self.active_count);
    }

    /// Dense round: stream the whole arc array instead of walking the
    /// active list. Observable state afterwards (words, active list,
    /// receipts, counters) is identical to what [`Self::step_sparse`]
    /// would have produced — only the memory access order differs.
    fn step_dense(&mut self, round: u32) -> u64 {
        // Delivery: a single sequential sweep over every arc word.
        self.receivers.clear();
        let mut delivered = 0u64;
        for idx in 0..self.cur.len() {
            let w = self.cur[idx];
            if w == 0 {
                continue;
            }
            let head = self.heads[idx];
            if self.recv[head.index()] == 0 {
                self.receivers.push(head);
            }
            self.recv[head.index()] |= w;
            delivered += u64::from(w.count_ones());
            Self::add_message_word(&mut self.message_planes, w);
        }
        self.total_messages += delivered;
        self.messages_per_round.push(delivered);

        if self.record_receipts {
            for i in 0..self.receivers.len() {
                let v = self.receivers[i];
                if self.receipts[v.index()].is_empty() {
                    self.informed.push(v);
                }
                let mask = self.recv[v.index()];
                self.receipts[v.index()].push((round, mask));
            }
        }

        // Emission: the rule per edge pair. Arc `2e` and its reverse
        // `2e + 1` are adjacent words ([`ArcId::reversed`] is `index ^ 1`)
        // and the head of one is the tail of the other, so
        // `next[v→w] = recv[v] & !cur[w→v]` reads `cur`/`heads`
        // sequentially and writes `next_words` sequentially; only the
        // `recv` lookups (a node-indexed array, not the big arc array)
        // are scattered. Nodes that received nothing have `recv == 0`
        // and emit nothing, so sweeping every edge is the same rule.
        // The sparse list is *not* materialized — a dense successor
        // round never reads it, so only the count is kept (`relist_active`
        // rebuilds the list if a sparse round follows).
        let mut live_next = 0u64;
        let mut count = 0usize;
        for e in 0..self.cur.len() / 2 {
            let a = 2 * e;
            let forward = self.cur[a];
            let backward = self.cur[a + 1];
            let next_forward = self.recv[self.heads[a + 1].index()] & !backward;
            let next_backward = self.recv[self.heads[a].index()] & !forward;
            self.next_words[a] = next_forward;
            self.next_words[a + 1] = next_backward;
            live_next |= next_forward | next_backward;
            count += usize::from(next_forward != 0) + usize::from(next_backward != 0);
        }
        core::mem::swap(&mut self.cur, &mut self.next_words);
        self.active.clear();
        self.active_listed = false;
        self.active_count = count;
        for &v in &self.receivers {
            self.recv[v.index()] = 0;
        }
        live_next
    }

    /// Runs until every lane terminates or `max_rounds`; the returned
    /// all-lane outcome's termination round is the **maximum** over the
    /// per-lane rounds (see [`BitLaneFlooding::lane_outcome`]).
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        let outcome = loop {
            if self.round >= max_rounds {
                break if self.active_count == 0 {
                    Outcome::Terminated {
                        last_active_round: self.round,
                    }
                } else {
                    Outcome::CapReached {
                        rounds_executed: self.round,
                    }
                };
            }
            if self.step().is_none() {
                break Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        };
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_finished(&FloodEnd {
                terminated: outcome.is_terminated(),
                rounds: self.round,
                total_messages: self.total_messages,
            });
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierFlooding;
    use af_graph::generators;

    /// Every lane of a batch must match a standalone frontier flood of the
    /// same source set: outcome, message total, and per-node receipts.
    fn assert_lanes_match_frontier(g: &Graph, lane_sources: &[Vec<NodeId>]) {
        let cap = 2 * g.node_count() as u32 + 2;
        let mut batch = BitLaneFlooding::new(g, lane_sources.iter().map(|s| s.iter().copied()));
        batch.run(cap);
        assert_eq!(batch.lane_count(), lane_sources.len());
        for (lane, set) in lane_sources.iter().enumerate() {
            let mut solo = FrontierFlooding::new(g, set.iter().copied());
            let outcome = solo.run(cap);
            assert_eq!(batch.lane_outcome(lane), outcome, "lane {lane} outcome");
            assert_eq!(
                batch.lane_messages(lane),
                solo.total_messages(),
                "lane {lane} messages"
            );
            for v in g.nodes() {
                assert_eq!(
                    batch.lane_receipts(v, lane),
                    solo.receipts(v),
                    "lane {lane} receipts at {v}"
                );
            }
        }
    }

    #[test]
    fn single_lane_matches_frontier_on_named_topologies() {
        for (g, s) in [
            (generators::path(7), 0usize),
            (generators::cycle(3), 0),
            (generators::cycle(6), 2),
            (generators::petersen(), 0),
            (generators::grid(3, 4), 5),
            (generators::star(6), 3),
        ] {
            assert_lanes_match_frontier(&g, &[vec![NodeId::new(s)]]);
        }
    }

    #[test]
    fn full_64_lane_word_matches_frontier_lane_for_lane() {
        // 64 single-source lanes cycling over Petersen's 10 nodes, so many
        // lanes share every arc — the maximal-overlap case.
        let g = generators::petersen();
        let lanes: Vec<Vec<NodeId>> = (0..LANES)
            .map(|l| vec![NodeId::new(l % g.node_count())])
            .collect();
        assert_lanes_match_frontier(&g, &lanes);
    }

    #[test]
    fn mixed_set_sizes_share_a_word() {
        let g = generators::grid(4, 5);
        let lanes = vec![
            vec![NodeId::new(0)],
            vec![NodeId::new(3), NodeId::new(17)],
            vec![
                NodeId::new(8),
                NodeId::new(9),
                NodeId::new(10),
                NodeId::new(11),
            ],
        ];
        assert_lanes_match_frontier(&g, &lanes);
    }

    #[test]
    fn lanes_terminate_independently() {
        // Disconnected graph: a short path (bipartite, lane dies at
        // e(0) = 2) next to an odd 9-cycle (2D + 1 = 9): per-lane
        // termination rounds differ while the state words stay shared.
        let mut edges: Vec<(usize, usize)> = vec![(0, 1), (1, 2)];
        for i in 0..9 {
            edges.push((3 + i, 3 + (i + 1) % 9));
        }
        let g = Graph::from_edges(12, edges.iter().copied()).unwrap();
        let mut sim = BitLaneFlooding::new(&g, [[NodeId::new(0)], [NodeId::new(3)]]);
        assert_eq!(sim.live_lanes(), 0b11);
        let outcome = sim.run(100);
        assert!(outcome.is_terminated());
        assert_eq!(outcome.termination_round(), Some(9));
        assert_eq!(sim.lane_outcome(0).termination_round(), Some(2));
        assert_eq!(sim.lane_outcome(1).termination_round(), Some(9));
        assert_eq!(sim.live_lanes(), 0);
        assert_lanes_match_frontier(&g, &[vec![NodeId::new(0)], vec![NodeId::new(3)]]);
    }

    #[test]
    fn hybrid_sparse_and_dense_rounds_stay_lane_exact() {
        // Wavefronts on a sparse random graph start narrow and widen past
        // the dense-round threshold within a few hops, so one run crosses
        // between both step implementations. Record which mode each round
        // actually took (the same predicate `step` dispatches on), prove
        // both occurred, then pin the run lane-for-lane to frontier.
        let g = generators::sparse_connected(500, 700, 7);
        let lanes: Vec<Vec<NodeId>> = (0..9)
            .map(|l| vec![NodeId::new((l * 53) % g.node_count())])
            .collect();
        let mut sim = BitLaneFlooding::new(&g, lanes.iter().map(|s| s.iter().copied()));
        let (mut saw_sparse, mut saw_dense) = (false, false);
        while sim.active_count != 0 {
            if sim.active_count >= sim.cur.len() / DENSE_ACTIVITY_DIVISOR {
                saw_dense = true;
            } else {
                saw_sparse = true;
            }
            sim.step();
        }
        assert!(
            saw_sparse && saw_dense,
            "test graph must exercise both round modes (sparse: {saw_sparse}, dense: {saw_dense})"
        );
        assert_lanes_match_frontier(&g, &lanes);
    }

    #[test]
    fn empty_and_duplicate_lane_sources() {
        let g = generators::cycle(6);
        let mut sim =
            BitLaneFlooding::new(&g, [vec![], vec![NodeId::new(2), NodeId::new(2)], vec![]]);
        assert_eq!(sim.lane_count(), 3);
        assert_eq!(sim.live_lanes(), 0b010);
        let outcome = sim.run(100);
        assert!(outcome.is_terminated());
        assert_eq!(sim.lane_outcome(0).termination_round(), Some(0));
        assert_eq!(sim.lane_outcome(2).termination_round(), Some(0));
        assert_eq!(sim.lane_messages(0), 0);
        // Duplicates collapse exactly as in the frontier engine.
        let mut solo = FrontierFlooding::new(&g, [NodeId::new(2)]);
        solo.run(100);
        assert_eq!(sim.lane_messages(1), solo.total_messages());
    }

    #[test]
    fn cap_reports_per_lane() {
        // Lane 0 floods from every node at once (T = 1 on a bipartite
        // graph), lane 1 from an endpoint (T = e(0) = 11): cap the run so
        // only lane 0 has finished.
        let g = generators::path(12);
        let everyone: Vec<NodeId> = g.nodes().collect();
        let mut sim = BitLaneFlooding::new(&g, [everyone, vec![NodeId::new(0)]]);
        let outcome = sim.run(3);
        assert!(!outcome.is_terminated());
        assert_eq!(
            sim.lane_outcome(0),
            Outcome::Terminated {
                last_active_round: 1
            }
        );
        assert_eq!(
            sim.lane_outcome(1),
            Outcome::CapReached { rounds_executed: 3 }
        );
        assert_eq!(sim.live_lanes(), 0b10);
        // Running on to completion resolves the capped lane.
        let outcome = sim.run(100);
        assert!(outcome.is_terminated());
        assert_eq!(sim.lane_outcome(1).termination_round(), Some(11));
    }

    #[test]
    fn reset_reuses_state_cleanly() {
        let g = generators::petersen();
        let mut sim = BitLaneFlooding::new(&g, (0..17).map(|l| [NodeId::new(l % g.node_count())]));
        sim.run(100);
        // Reset to a different shape: 2 lanes, multi-source.
        sim.reset([vec![NodeId::new(1)], vec![NodeId::new(4), NodeId::new(9)]]);
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.total_messages(), 0);
        assert_eq!(sim.lane_count(), 2);
        sim.run(100);
        let mut fresh = BitLaneFlooding::new(
            &g,
            [vec![NodeId::new(1)], vec![NodeId::new(4), NodeId::new(9)]],
        );
        fresh.run(100);
        for lane in 0..2 {
            assert_eq!(sim.lane_outcome(lane), fresh.lane_outcome(lane));
            assert_eq!(sim.lane_messages(lane), fresh.lane_messages(lane));
            for v in g.nodes() {
                assert_eq!(sim.lane_receipts(v, lane), fresh.lane_receipts(v, lane));
            }
        }
        // Reset mid-run (messages in flight) is also clean.
        sim.reset([[NodeId::new(3)]]);
        sim.step();
        sim.reset([[NodeId::new(5)]]);
        let mut fresh = BitLaneFlooding::new(&g, [[NodeId::new(5)]]);
        assert_eq!(sim.run(100), fresh.run(100));
        assert_eq!(sim.total_messages(), fresh.total_messages());
    }

    #[test]
    fn receipts_can_be_disabled() {
        let g = generators::cycle(6);
        let mut sim = BitLaneFlooding::new(&g, [[NodeId::new(0)]]);
        sim.set_record_receipts(false);
        sim.run(100);
        assert!(sim.receipt_masks(NodeId::new(1)).is_empty());
        assert_eq!(sim.informed_count(), 0);
        assert!(sim.total_messages() > 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn more_than_64_lanes_is_rejected() {
        let g = generators::cycle(5);
        let _ = BitLaneFlooding::new(&g, (0..65).map(|_| [NodeId::new(0)]));
    }

    #[test]
    fn zero_lanes_is_a_terminated_batch() {
        let g = generators::cycle(5);
        let mut sim = BitLaneFlooding::new(&g, core::iter::empty::<[NodeId; 1]>());
        assert_eq!(sim.lane_count(), 0);
        assert!(sim.is_terminated());
        assert_eq!(
            sim.run(10),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
    }
}
