//! A fixed-size bitset over [`ArcId`]s, shared by the two bitset-backed
//! simulators ([`crate::FastFlooding`] and [`crate::FrontierFlooding`]).

use af_graph::ArcId;

/// Fixed-size bitset over arc ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ArcSet {
    words: Vec<u64>,
}

impl ArcSet {
    pub(crate) fn new(arc_count: usize) -> Self {
        ArcSet {
            words: vec![0; arc_count.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, a: ArcId) {
        self.words[a.index() / 64] |= 1 << (a.index() % 64);
    }

    #[inline]
    pub(crate) fn remove(&mut self, a: ArcId) {
        self.words[a.index() / 64] &= !(1 << (a.index() % 64));
    }

    #[inline]
    pub(crate) fn contains(&self, a: ArcId) -> bool {
        self.words[a.index() / 64] >> (a.index() % 64) & 1 == 1
    }

    pub(crate) fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw bitset words (compact configuration key).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the set arc ids in increasing order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(ArcId::from_index(wi * 64 + b))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ArcSet::new(130);
        assert!(s.is_empty());
        for i in [0usize, 63, 64, 129] {
            s.insert(ArcId::from_index(i));
        }
        assert_eq!(s.count(), 4);
        assert!(s.contains(ArcId::from_index(63)));
        assert!(!s.contains(ArcId::from_index(62)));
        s.remove(ArcId::from_index(63));
        assert!(!s.contains(ArcId::from_index(63)));
        assert_eq!(s.count(), 3);
        let ids: Vec<usize> = s.iter().map(ArcId::index).collect();
        assert_eq!(ids, vec![0, 64, 129]);
        s.clear();
        assert!(s.is_empty());
    }
}
