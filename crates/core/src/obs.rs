//! Zero-overhead observability for flooding runs: round-level probes and
//! machine-readable NDJSON traces.
//!
//! The paper's whole argument is about *round-by-round dynamics* — the
//! round-sets `R_i`, the `e(S) < T ≤ e(S) + D + 1` termination window,
//! echo waves meeting on odd cycles — yet a [`crate::FloodingRun`] records
//! only the aggregate outcome. This module adds a [`FloodProbe`]: a
//! per-round callback surface every engine honours, carrying the active-arc
//! count, the frontier width, the messages sent and lost, the receiver set,
//! and engine-specific notes (bitlane sparse↔dense dispatch, sharded
//! boundary traffic, dynamic churn applications).
//!
//! Probes are **opt-in and free when absent**: an engine holds an
//! `Option<SharedProbe>` that defaults to `None`, and the entire
//! observation path sits behind one well-predicted `is_some()` branch per
//! round — the counting-allocator suite (`tests/batch_allocation.rs`)
//! additionally pins that a warm flood stays allocation-free both with no
//! probe and with a warm [`NdjsonTraceWriter`] attached.
//!
//! Traces are a *correctness artifact*, not just logs: the NDJSON schema
//! (version [`TRACE_SCHEMA_VERSION`]) carries enough per round — the
//! receiver set — for `af_analysis`'s trace-replay checker to re-derive
//! the round-sets and receive rounds of the flood and assert them equal to
//! the engine's own record, for all five engines.
//!
//! # Examples
//!
//! ```
//! use af_core::obs::NdjsonTraceWriter;
//! use af_core::AmnesiacFlooding;
//! use af_graph::generators;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let g = generators::cycle(6);
//! // Keep a typed handle; a clone coerces into the `SharedProbe` the
//! // driver takes, and the handle reads the trace back afterwards.
//! let writer = Rc::new(RefCell::new(NdjsonTraceWriter::new(Vec::new())));
//! let run = AmnesiacFlooding::single_source(&g, 0.into())
//!     .with_probe(writer.clone())
//!     .run();
//! assert_eq!(run.termination_round(), Some(3));
//! // One start line, one line per executed round, one end line.
//! let trace = writer.borrow_mut().take_sink();
//! let text = String::from_utf8(trace).unwrap();
//! assert_eq!(text.lines().count(), 3 + 2);
//! assert!(text.starts_with("{\"v\":1,\"event\":\"start\""));
//! ```

use af_graph::NodeId;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::rc::Rc;

pub mod metrics;

/// Version stamped into every NDJSON trace line (`"v"`); bumped whenever a
/// field is renamed, removed, or changes meaning. Adding fields is not a
/// version bump — consumers must ignore unknown keys.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// What an engine announces when a (re-)seeded flood begins: emitted from
/// the seeding path, before round 1 executes.
#[derive(Debug, Clone, Copy)]
pub struct FloodStart<'a> {
    /// Engine family name, the same word [`crate::FloodEngine::family`]
    /// reports (`"frontier"`, `"fast"`, `"sharded"`, `"dynamic"`,
    /// `"bitlane"`).
    pub engine: &'static str,
    /// Node count of the flooded graph at seeding time.
    pub nodes: usize,
    /// The seeded sources, in seeding order. May contain duplicates when
    /// the caller passed duplicates (consumers normalise); on a multi-lane
    /// engine this is the concatenation over all seeded lanes.
    pub sources: &'a [NodeId],
}

/// Engine-specific annotation attached to a finished round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundNote {
    /// Nothing engine-specific happened (static single-threaded engines).
    #[default]
    None,
    /// The bit-parallel engine ran this round as a sequential whole-array
    /// sweep (the wide-wavefront regime).
    DenseSweep,
    /// The bit-parallel engine ran this round over its sparse active list
    /// (the narrow-wavefront regime).
    SparseWalk,
    /// The sharded engine's barrier exchange: how many of this round's
    /// produced arcs crossed a shard boundary.
    ShardExchange {
        /// Arcs routed to a different shard than the one that emitted them.
        crossing: u64,
    },
    /// The dynamic engine applied a churn delta at this round's boundary.
    Churn {
        /// Edits the boundary delta carried (applied or skipped).
        edits: u64,
        /// In-flight messages dropped by this boundary alone.
        lost: u64,
    },
}

/// One executed round, as reported to [`FloodProbe::round_finished`].
///
/// `receivers` is the round-set `R_round` of the paper (union across lanes
/// on the bit-parallel engine): every node that received the message this
/// round, in engine-discovery order. The slice borrows engine scratch and
/// is only valid for the duration of the callback.
#[derive(Debug, Clone, Copy)]
pub struct RoundRecord<'a> {
    /// 1-based round number.
    pub round: u32,
    /// Messages delivered this round (= arcs that carried the message in,
    /// summed across lanes on the bit-parallel engine).
    pub delivered: u64,
    /// Frontier width: `receivers.len()`.
    pub frontier: usize,
    /// Messages sent onward for the next round (arcs activated by this
    /// round's deliveries; 0 exactly when the flood just terminated).
    pub sent: u64,
    /// In-flight messages lost to topology churn at this round's boundary
    /// (always 0 on static engines).
    pub lost: u64,
    /// The nodes that received this round — the paper's round-set.
    pub receivers: &'a [NodeId],
    /// Engine-specific annotation.
    pub note: RoundNote,
}

/// What an engine announces when a [`run`](crate::Flooder::run) call
/// returns (one per `run` call: a capped flood resumed by a second `run`
/// reports twice).
#[derive(Debug, Clone, Copy)]
pub struct FloodEnd {
    /// Whether the flood terminated (no arc carries the message).
    pub terminated: bool,
    /// Rounds executed in total (since seeding, not since this `run`).
    pub rounds: u32,
    /// Messages delivered in total, summed across lanes.
    pub total_messages: u64,
}

/// Per-round observer of a flooding execution.
///
/// Every callback has a no-op default, so a probe implements only what it
/// needs; engines invoke the callbacks through a [`SharedProbe`] handle
/// behind a single `Option` check per round. The sharded engine buffers
/// per-round data inside its workers and replays the callbacks in round
/// order when `run` returns — ordering is preserved, timing is not.
pub trait FloodProbe: std::fmt::Debug {
    /// A freshly seeded flood is about to execute (round 0 state known).
    fn flood_started(&mut self, start: &FloodStart<'_>) {
        let _ = start;
    }
    /// Round `round` is about to execute.
    fn round_started(&mut self, round: u32) {
        let _ = round;
    }
    /// Round `record.round` finished executing.
    fn round_finished(&mut self, record: &RoundRecord<'_>) {
        let _ = record;
    }
    /// A `run` call returned.
    fn flood_finished(&mut self, end: &FloodEnd) {
        let _ = end;
    }
}

/// The clonable probe handle engines hold: shared, interior-mutable, and
/// deliberately **not** `Send` — a probe observes from the coordinating
/// thread only (the sharded engine's workers never touch it).
pub type SharedProbe = Rc<RefCell<dyn FloodProbe>>;

/// Wraps a probe into the [`SharedProbe`] handle the drivers and engines
/// accept. Keep a clone to read the probe back after the run.
pub fn shared<P: FloodProbe + 'static>(probe: P) -> SharedProbe {
    Rc::new(RefCell::new(probe))
}

/// The do-nothing probe: attaching it exercises the full observation path
/// (every callback fires) without observable effect — the overhead
/// baseline the allocation suite measures.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl FloodProbe for NoopProbe {}

/// A [`FloodProbe`] that writes one schema-versioned JSON line per event
/// to an [`io::Write`] sink: a `start` line carrying the engine and
/// sources, a `round` line per executed round carrying the full
/// [`RoundRecord`] (receivers included — the line set is replayable), and
/// an `end` line per `run` call.
///
/// Formatting goes through one reusable line buffer, so a **warm** writer
/// over a pre-grown sink allocates nothing per flood (pinned by
/// `tests/batch_allocation.rs`). I/O errors are sticky: the first error is
/// kept, later events are dropped, and [`NdjsonTraceWriter::finish`]
/// surfaces it.
#[derive(Debug)]
pub struct NdjsonTraceWriter<W: Write + std::fmt::Debug> {
    sink: W,
    line: String,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write + std::fmt::Debug> NdjsonTraceWriter<W> {
    /// Creates a trace writer over an open sink (a file, a `Vec<u8>`, a
    /// buffered writer — anything [`io::Write`]).
    pub fn new(sink: W) -> Self {
        NdjsonTraceWriter {
            sink,
            line: String::new(),
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Mutable access to the sink (for tests that truncate a `Vec<u8>`
    /// sink between floods while keeping its capacity warm).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }

    /// Flushes and returns the sink, or the first I/O error the writer
    /// swallowed during callbacks.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Writes the pending line to the sink, recording the first error.
    fn commit(&mut self) {
        if self.error.is_some() {
            return;
        }
        self.line.push('\n');
        match self.sink.write_all(self.line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Starts a line with the schema version and event tag.
    fn open_line(&mut self, event: &str) {
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"v\":{TRACE_SCHEMA_VERSION},\"event\":\"{event}\""
        );
    }

    /// Appends `,"key":[a,b,c]` for a node-id list.
    fn push_nodes(&mut self, key: &str, nodes: &[NodeId]) {
        let _ = write!(self.line, ",\"{key}\":[");
        for (i, v) in nodes.iter().enumerate() {
            if i > 0 {
                self.line.push(',');
            }
            let _ = write!(self.line, "{}", v.index());
        }
        self.line.push(']');
    }
}

impl NdjsonTraceWriter<Vec<u8>> {
    /// Takes the accumulated bytes out of a `Vec<u8>`-sinked writer,
    /// leaving it empty (capacity moves out with the bytes).
    pub fn take_sink(&mut self) -> Vec<u8> {
        core::mem::take(&mut self.sink)
    }
}

impl<W: Write + std::fmt::Debug> FloodProbe for NdjsonTraceWriter<W> {
    fn flood_started(&mut self, start: &FloodStart<'_>) {
        self.open_line("start");
        let _ = write!(
            self.line,
            ",\"engine\":\"{}\",\"nodes\":{}",
            start.engine, start.nodes
        );
        self.push_nodes("sources", start.sources);
        self.line.push('}');
        self.commit();
    }

    fn round_finished(&mut self, r: &RoundRecord<'_>) {
        self.open_line("round");
        let _ = write!(
            self.line,
            ",\"round\":{},\"delivered\":{},\"frontier\":{},\"sent\":{},\"lost\":{}",
            r.round, r.delivered, r.frontier, r.sent, r.lost
        );
        self.push_nodes("receivers", r.receivers);
        match r.note {
            RoundNote::None => {}
            RoundNote::DenseSweep => self.line.push_str(",\"note\":\"dense\""),
            RoundNote::SparseWalk => self.line.push_str(",\"note\":\"sparse\""),
            RoundNote::ShardExchange { crossing } => {
                let _ = write!(self.line, ",\"note\":\"exchange\",\"crossing\":{crossing}");
            }
            RoundNote::Churn { edits, lost } => {
                let _ = write!(
                    self.line,
                    ",\"note\":\"churn\",\"edits\":{edits},\"churn_lost\":{lost}"
                );
            }
        }
        self.line.push('}');
        self.commit();
    }

    fn flood_finished(&mut self, end: &FloodEnd) {
        self.open_line("end");
        let _ = write!(
            self.line,
            ",\"terminated\":{},\"rounds\":{},\"messages\":{}}}",
            end.terminated, end.rounds, end.total_messages
        );
        self.commit();
    }
}

/// A probe that counts callback invocations — handy for asserting that an
/// engine drives the probe surface correctly (and cheap enough to attach
/// anywhere).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingProbe {
    /// `flood_started` calls seen.
    pub starts: u64,
    /// `round_started` calls seen.
    pub rounds_started: u64,
    /// `round_finished` calls seen.
    pub rounds_finished: u64,
    /// `flood_finished` calls seen.
    pub ends: u64,
    /// Sum of `delivered` over all finished rounds.
    pub delivered: u64,
    /// Sum of `lost` over all finished rounds.
    pub lost: u64,
}

impl FloodProbe for CountingProbe {
    fn flood_started(&mut self, _start: &FloodStart<'_>) {
        self.starts += 1;
    }
    fn round_started(&mut self, _round: u32) {
        self.rounds_started += 1;
    }
    fn round_finished(&mut self, record: &RoundRecord<'_>) {
        self.rounds_finished += 1;
        self.delivered += record.delivered;
        self.lost += record.lost;
    }
    fn flood_finished(&mut self, _end: &FloodEnd) {
        self.ends += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_lines_are_valid_and_versioned() {
        let mut w = NdjsonTraceWriter::new(Vec::new());
        w.flood_started(&FloodStart {
            engine: "frontier",
            nodes: 4,
            sources: &[NodeId::new(1)],
        });
        w.round_finished(&RoundRecord {
            round: 1,
            delivered: 2,
            frontier: 2,
            sent: 2,
            lost: 0,
            receivers: &[NodeId::new(0), NodeId::new(2)],
            note: RoundNote::None,
        });
        w.round_finished(&RoundRecord {
            round: 2,
            delivered: 2,
            frontier: 1,
            sent: 0,
            lost: 1,
            receivers: &[NodeId::new(3)],
            note: RoundNote::Churn { edits: 3, lost: 1 },
        });
        w.flood_finished(&FloodEnd {
            terminated: true,
            rounds: 2,
            total_messages: 4,
        });
        assert_eq!(w.lines(), 4);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"v\":1,\"event\":\"start\",\"engine\":\"frontier\",\"nodes\":4,\"sources\":[1]}"
        );
        assert_eq!(
            lines[1],
            "{\"v\":1,\"event\":\"round\",\"round\":1,\"delivered\":2,\"frontier\":2,\
             \"sent\":2,\"lost\":0,\"receivers\":[0,2]}"
        );
        assert_eq!(
            lines[2],
            "{\"v\":1,\"event\":\"round\",\"round\":2,\"delivered\":2,\"frontier\":1,\
             \"sent\":0,\"lost\":1,\"receivers\":[3],\"note\":\"churn\",\"edits\":3,\
             \"churn_lost\":1}"
        );
        assert_eq!(
            lines[3],
            "{\"v\":1,\"event\":\"end\",\"terminated\":true,\"rounds\":2,\"messages\":4}"
        );
    }

    #[test]
    fn engine_notes_render() {
        let mut w = NdjsonTraceWriter::new(Vec::new());
        for note in [
            RoundNote::DenseSweep,
            RoundNote::SparseWalk,
            RoundNote::ShardExchange { crossing: 7 },
        ] {
            w.round_finished(&RoundRecord {
                round: 1,
                delivered: 1,
                frontier: 1,
                sent: 1,
                lost: 0,
                receivers: &[NodeId::new(0)],
                note,
            });
        }
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(text.contains("\"note\":\"dense\""));
        assert!(text.contains("\"note\":\"sparse\""));
        assert!(text.contains("\"note\":\"exchange\",\"crossing\":7"));
    }

    #[test]
    fn io_errors_are_sticky_and_surface_in_finish() {
        /// A sink that fails every write.
        #[derive(Debug)]
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = NdjsonTraceWriter::new(Broken);
        w.round_started(1);
        w.flood_finished(&FloodEnd {
            terminated: true,
            rounds: 0,
            total_messages: 0,
        });
        assert_eq!(w.lines(), 0);
        assert!(w.finish().is_err());
    }

    #[test]
    fn counting_probe_counts() {
        let mut p = CountingProbe::default();
        p.flood_started(&FloodStart {
            engine: "fast",
            nodes: 1,
            sources: &[],
        });
        p.round_started(1);
        p.round_finished(&RoundRecord {
            round: 1,
            delivered: 5,
            frontier: 1,
            sent: 0,
            lost: 2,
            receivers: &[NodeId::new(0)],
            note: RoundNote::None,
        });
        p.flood_finished(&FloodEnd {
            terminated: true,
            rounds: 1,
            total_messages: 5,
        });
        assert_eq!(p.starts, 1);
        assert_eq!(p.rounds_started, 1);
        assert_eq!(p.rounds_finished, 1);
        assert_eq!(p.ends, 1);
        assert_eq!(p.delivered, 5);
        assert_eq!(p.lost, 2);
    }
}
