//! Round-set analysis: the combinatorial machinery of the Theorem 3.1
//! termination proof, checked on concrete runs.
//!
//! The proof defines round-sets `R_0, R_1, …` (`R_0` = the source set,
//! `R_i` = nodes receiving at round `i`) and studies the family `R` of
//! sequences `R_s, …, R_{s+d}` whose two end sets intersect (`d > 0`). It
//! shows the even-duration subfamily `Re` must be empty — that is the whole
//! theorem, because a non-terminating flood would pin some node into
//! infinitely many round-sets and any three occurrences contain an even gap
//! (Lemma 3.2).
//!
//! [`analyze`] extracts every "same node at rounds `s` and `s + d`" pair
//! from a finished run and partitions them by parity, so tests can assert
//! `Re = ∅` empirically on millions of runs.

use crate::run::FloodingRun;
use af_graph::NodeId;

/// A witness that some node appears in two round-sets: `node ∈ R_start ∩
/// R_{start + duration}`. The Theorem 3.1 proof calls the sequence between
/// them an element of `R` with start-point `start` and duration `duration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecurrencePair {
    /// The recurring node.
    pub node: NodeId,
    /// The earlier round (the sequence's start-point `s`).
    pub start: u32,
    /// The gap `d > 0` to the later round.
    pub duration: u32,
}

impl RecurrencePair {
    /// Returns `true` if this pair belongs to the proof's `Re` (even
    /// duration) — Theorem 3.1 says this never happens.
    #[must_use]
    pub fn is_even_duration(&self) -> bool {
        self.duration.is_multiple_of(2)
    }
}

/// The result of analysing a run's round-sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSetAnalysis {
    pairs: Vec<RecurrencePair>,
    max_occurrences: usize,
}

impl RoundSetAnalysis {
    /// Every recurrence pair (element of the proof's `R`, reported once per
    /// node and round pair).
    #[must_use]
    pub fn pairs(&self) -> &[RecurrencePair] {
        &self.pairs
    }

    /// The pairs with even duration — the proof's `Re`. Non-empty `Re`
    /// would contradict Theorem 3.1.
    #[must_use]
    pub fn even_duration_pairs(&self) -> Vec<RecurrencePair> {
        self.pairs
            .iter()
            .copied()
            .filter(RecurrencePair::is_even_duration)
            .collect()
    }

    /// Returns `true` iff the proof's `Re` is empty for this run.
    #[must_use]
    pub fn even_sequences_empty(&self) -> bool {
        self.pairs.iter().all(|p| !p.is_even_duration())
    }

    /// The largest number of round-sets any single node belongs to
    /// (including `R_0` membership for sources). The double-cover theory
    /// bounds this by 2 for non-source nodes and 2 overall.
    #[must_use]
    pub fn max_occurrences(&self) -> usize {
        self.max_occurrences
    }
}

/// Extracts all round-set recurrence pairs from a run.
///
/// Sources count as members of `R_0`, matching the paper's convention.
///
/// # Examples
///
/// ```
/// use af_core::{flood, roundsets};
/// use af_graph::generators;
///
/// // The triangle: a and c belong to R_1 and R_2 (duration 1, odd), and
/// // the source belongs to R_0 and R_3 (duration 3, odd). Re is empty.
/// let run = flood(&generators::cycle(3), 1.into());
/// let analysis = roundsets::analyze(&run);
/// assert!(analysis.even_sequences_empty());
/// assert_eq!(analysis.pairs().len(), 3);
/// ```
#[must_use]
pub fn analyze(run: &FloodingRun) -> RoundSetAnalysis {
    let mut pairs = Vec::new();
    let mut max_occurrences = 0usize;

    // Occurrence rounds per node: receive rounds, plus round 0 for sources.
    let sets = run.round_sets();
    let mut occurrences: std::collections::HashMap<NodeId, Vec<u32>> =
        std::collections::HashMap::new();
    for (r, set) in sets.iter().enumerate() {
        for &v in set {
            // af-audit: allow(no-lossy-id-cast): round indexes are bounded by the
            // u32 round cap that produced the sets
            occurrences.entry(v).or_default().push(r as u32);
        }
    }

    for (&node, rounds) in &occurrences {
        max_occurrences = max_occurrences.max(rounds.len());
        for i in 0..rounds.len() {
            for j in (i + 1)..rounds.len() {
                pairs.push(RecurrencePair {
                    node,
                    start: rounds[i],
                    duration: rounds[j] - rounds[i],
                });
            }
        }
    }
    pairs.sort_unstable_by_key(|p| (p.start, p.duration, p.node));
    RoundSetAnalysis {
        pairs,
        max_occurrences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{flood, AmnesiacFlooding};
    use af_graph::generators;

    #[test]
    fn bipartite_runs_have_no_recurrences_at_all() {
        for g in [
            generators::path(7),
            generators::cycle(8),
            generators::grid(3, 4),
        ] {
            for v in g.nodes() {
                let run = flood(&g, v);
                let a = analyze(&run);
                assert!(a.pairs().is_empty(), "{g} from {v}");
                assert_eq!(a.max_occurrences(), 1);
            }
        }
    }

    #[test]
    fn non_bipartite_recurrences_are_all_odd() {
        for g in [
            generators::cycle(3),
            generators::cycle(7),
            generators::complete(6),
            generators::petersen(),
            generators::wheel(5),
        ] {
            for v in g.nodes() {
                let run = flood(&g, v);
                let a = analyze(&run);
                assert!(!a.pairs().is_empty(), "{g}: odd cycles force recurrences");
                assert!(
                    a.even_sequences_empty(),
                    "{g}: Theorem 3.1's Re must be empty"
                );
                assert!(a.max_occurrences() <= 2);
            }
        }
    }

    #[test]
    fn triangle_pairs_match_hand_computation() {
        let run = flood(&generators::cycle(3), 1.into());
        let a = analyze(&run);
        // R0 = {1}, R1 = {0, 2}, R2 = {0, 2}, R3 = {1}
        let pairs = a.pairs();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&RecurrencePair {
            node: 1.into(),
            start: 0,
            duration: 3
        }));
        assert!(pairs.contains(&RecurrencePair {
            node: 0.into(),
            start: 1,
            duration: 1
        }));
        assert!(pairs.contains(&RecurrencePair {
            node: 2.into(),
            start: 1,
            duration: 1
        }));
        assert_eq!(a.even_duration_pairs().len(), 0);
    }

    #[test]
    fn multi_source_runs_also_have_empty_re() {
        let g = generators::petersen();
        let run = AmnesiacFlooding::multi_source(&g, [0.into(), 5.into()]).run();
        assert!(run.terminated());
        let a = analyze(&run);
        assert!(a.even_sequences_empty());
    }

    #[test]
    fn recurrence_pair_parity_helper() {
        let even = RecurrencePair {
            node: 0.into(),
            start: 1,
            duration: 2,
        };
        let odd = RecurrencePair {
            node: 0.into(),
            start: 1,
            duration: 3,
        };
        assert!(even.is_even_duration());
        assert!(!odd.is_even_duration());
    }
}
