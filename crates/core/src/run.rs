//! High-level drivers: configure a flood, run it, inspect everything the
//! paper talks about (round-sets `R_i`, receive rounds, termination round,
//! message complexity) — plus [`FloodBatch`], the batched multi-source
//! runner that floods one graph from many sources while reusing a single
//! simulator's allocations.
//!
//! Both drivers default to the frontier-sparse [`FrontierFlooding`] engine
//! and can be switched to the multicore [`crate::ShardedFlooding`] backend
//! through [`FloodEngine`] — the two produce bit-identical records.

use crate::bitlane::BitLaneFlooding;
use crate::dynamic::DynamicFlooding;
use crate::fast::FastFlooding;
use crate::flooder::Flooder;
use crate::frontier::FrontierFlooding;
use crate::obs::SharedProbe;
use crate::sharded::ShardedFlooding;
use af_engine::Outcome;
use af_graph::dynamic::{ChurnSchedule, ChurnSpec};
use af_graph::{Graph, NodeId, Partition, PartitionStrategy};
use std::fmt;
use std::str::FromStr;

/// Thread count [`FloodEngine::from_str`] assumes for a bare `"sharded"`
/// (no `:k`) — the same default the CLI's `--threads` flag documents.
pub const DEFAULT_SHARD_THREADS: usize = 4;

/// Which simulator a driver executes floods with.
///
/// The static engines ([`FloodEngine::Frontier`], [`FloodEngine::Sharded`])
/// produce the same [`FloodingRun`] / [`FloodStats`] for the same inputs
/// (the property suites enforce this); between them the choice is purely a
/// performance matter — `Frontier` is the single-threaded hot path,
/// `Sharded` splits each flood's rounds over worker threads and wins once
/// per-round frontiers are large enough to amortize the round barrier (see
/// the README's benchmarking notes).
///
/// [`FloodEngine::Dynamic`] changes the *workload*, not just the runtime:
/// it floods while the topology churns per its [`ChurnSpec`] (schedule
/// generated deterministically per graph). With a zero-rate spec it is
/// bit-identical to `Frontier` — the anchor the test suites pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloodEngine {
    /// Single-threaded frontier-sparse engine ([`FrontierFlooding`]).
    #[default]
    Frontier,
    /// Scan-all-arcs baseline engine ([`FastFlooding`]): `O(m)` bitset
    /// sweep per round. Exists as the reference the sparse engines are
    /// benchmarked against; same record as `Frontier`, always slower on
    /// sparse frontiers.
    Fast,
    /// Sharded multicore engine ([`crate::ShardedFlooding`]): one flood
    /// across `threads` worker shards.
    Sharded {
        /// Worker thread (= shard) count; `0` and `1` both mean one shard.
        threads: usize,
        /// How nodes are assigned to shards.
        strategy: PartitionStrategy,
    },
    /// Dynamic-graph engine ([`DynamicFlooding`]): the deterministic
    /// per-round deltas described by `churn` are **streamed** to the
    /// round boundaries mid-flood (identical to flooding under
    /// [`ChurnSchedule::generate`] at the driver's round cap, but in
    /// `O(graph)` memory at any scale). Termination is a *measurement*
    /// here, not a theorem.
    Dynamic {
        /// The churn workload; `ChurnSpec::NONE` means an empty schedule.
        churn: ChurnSpec,
    },
    /// Bit-parallel engine ([`BitLaneFlooding`]): packs up to 64
    /// independent floods into the bit lanes of one `u64` per arc and
    /// advances them all in a single CSR pass per round. A single flood
    /// occupies lane 0 alone; the engine pays off through
    /// [`FloodBatch::run_many`], which chunks a flood list into 64-lane
    /// groups.
    BitLane,
}

impl FloodEngine {
    /// The engine's family name — the bare head of its canonical string
    /// (`"frontier"`, `"fast"`, `"sharded"`, `"dynamic"`, `"bitlane"`),
    /// without the per-variant configuration.
    #[must_use]
    pub fn family(self) -> &'static str {
        match self {
            FloodEngine::Frontier => "frontier",
            FloodEngine::Fast => "fast",
            FloodEngine::Sharded { .. } => "sharded",
            FloodEngine::Dynamic { .. } => "dynamic",
            FloodEngine::BitLane => "bitlane",
        }
    }

    /// Constructs a boxed source-less simulator for `graph` — the one
    /// construction path behind [`AmnesiacFlooding::run`] and
    /// [`FloodBatch`]. Seed it with [`Flooder::reset`] (or
    /// [`Flooder::reset_lanes`]) before running.
    ///
    /// `horizon` is the round cap the caller will run with; the dynamic
    /// engine generates its churn schedule out to that horizon (the other
    /// engines ignore it).
    #[must_use]
    pub fn flooder<'g>(self, graph: &'g Graph, horizon: u32) -> Box<dyn Flooder + 'g> {
        match self {
            FloodEngine::Frontier => Box::new(FrontierFlooding::new(graph, [])),
            FloodEngine::Fast => Box::new(FastFlooding::new(graph, [])),
            FloodEngine::Sharded { threads, strategy } => Box::new(ShardedFlooding::new(
                graph,
                Partition::new(graph, strategy, threads),
                [],
            )),
            // Streamed deltas: O(graph) memory at any horizon.
            FloodEngine::Dynamic { churn } => {
                Box::new(DynamicFlooding::with_spec(graph, [], churn, horizon))
            }
            FloodEngine::BitLane => Box::new(BitLaneFlooding::new(
                graph,
                core::iter::empty::<[NodeId; 0]>(),
            )),
        }
    }
}

/// The canonical engine string: `frontier`, `fast`, `bitlane`,
/// `sharded:<threads>:<partitioner>`, or `dynamic:<churn>` (with
/// [`ChurnSpec`]'s own `kind:rate_pm:seed` / `none` syntax). This is the
/// **one** spelling shared by `--engine`, the benchmark JSON's
/// `engine_spec` rows, and the wire protocol — [`FloodEngine::from_str`]
/// parses every string this emits back to an equal value (property-tested).
impl fmt::Display for FloodEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloodEngine::Frontier => f.write_str("frontier"),
            FloodEngine::Fast => f.write_str("fast"),
            FloodEngine::BitLane => f.write_str("bitlane"),
            FloodEngine::Sharded { threads, strategy } => {
                write!(f, "sharded:{threads}:{}", strategy.name())
            }
            FloodEngine::Dynamic { churn } => write!(f, "dynamic:{churn}"),
        }
    }
}

/// Error from parsing a [`FloodEngine`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError(String);

impl fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseEngineError {}

/// Parses the canonical engine syntax (see the [`fmt::Display`] impl),
/// plus the obvious shorthands: bare `sharded` (= [`DEFAULT_SHARD_THREADS`]
/// threads, `bfs` partitioner), `sharded:<k>` (= `bfs`), and bare
/// `dynamic` (= zero churn).
impl FromStr for FloodEngine {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, config) = match s.split_once(':') {
            Some((head, config)) => (head, Some(config)),
            None => (s, None),
        };
        match (head, config) {
            ("frontier", None) => Ok(FloodEngine::Frontier),
            ("fast", None) => Ok(FloodEngine::Fast),
            ("bitlane", None) => Ok(FloodEngine::BitLane),
            ("frontier" | "fast" | "bitlane", Some(_)) => Err(ParseEngineError(format!(
                "engine '{head}' takes no ':' parameters (got '{s}')"
            ))),
            ("sharded", config) => {
                let (threads, strategy) = match config {
                    None => (DEFAULT_SHARD_THREADS, PartitionStrategy::Bfs),
                    Some(config) => {
                        let (threads, strategy) = match config.split_once(':') {
                            None => (config, None),
                            Some((threads, strategy)) => (threads, Some(strategy)),
                        };
                        let threads = threads.parse().map_err(|_| {
                            ParseEngineError(format!(
                                "bad thread count '{threads}' in engine '{s}'"
                            ))
                        })?;
                        let strategy = match strategy {
                            None => PartitionStrategy::Bfs,
                            Some(name) => name.parse().map_err(|_| {
                                ParseEngineError(format!(
                                    "bad partitioner '{name}' in engine '{s}' \
                                     (use contiguous, round-robin, or bfs)"
                                ))
                            })?,
                        };
                        (threads, strategy)
                    }
                };
                Ok(FloodEngine::Sharded { threads, strategy })
            }
            ("dynamic", config) => {
                let churn = match config {
                    None => ChurnSpec::NONE,
                    Some(config) => config.parse().map_err(|e| {
                        ParseEngineError(format!("bad churn spec in engine '{s}': {e}"))
                    })?,
                };
                Ok(FloodEngine::Dynamic { churn })
            }
            _ => Err(ParseEngineError(format!(
                "unknown engine '{s}' (use frontier, fast, sharded[:k[:partitioner]], \
                 dynamic[:churn], or bitlane)"
            ))),
        }
    }
}

/// Builder for an amnesiac-flooding execution ([C-BUILDER]).
///
/// # Examples
///
/// ```
/// use af_core::AmnesiacFlooding;
/// use af_graph::generators;
///
/// // Figure 1: flood the line 0-1-2-3 from node 1.
/// let g = generators::path(4);
/// let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
/// assert_eq!(run.termination_round(), Some(2));
/// assert_eq!(run.round_set(2), &[3.into()]); // R2 = {d}
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct AmnesiacFlooding<'g> {
    graph: &'g Graph,
    sources: Vec<NodeId>,
    max_rounds: Option<u32>,
    engine: FloodEngine,
    /// Explicit churn schedule (replay / hand-built). Takes precedence
    /// over a [`FloodEngine::Dynamic`] spec's generated schedule.
    churn: Option<ChurnSchedule>,
    /// Round-level observer handed to the engine before seeding, so it
    /// sees the flood-start record and every round.
    probe: Option<SharedProbe>,
}

impl<'g> AmnesiacFlooding<'g> {
    /// A flood started by the single distinguished node `source` (the
    /// paper's main setting).
    #[must_use]
    pub fn single_source(graph: &'g Graph, source: NodeId) -> Self {
        AmnesiacFlooding {
            graph,
            sources: vec![source],
            max_rounds: None,
            engine: FloodEngine::Frontier,
            churn: None,
            probe: None,
        }
    }

    /// A flood started simultaneously by every node in `sources` (the full
    /// paper's multi-source extension).
    #[must_use]
    pub fn multi_source<I>(graph: &'g Graph, sources: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        AmnesiacFlooding {
            graph,
            sources: sources.into_iter().collect(),
            max_rounds: None,
            engine: FloodEngine::Frontier,
            churn: None,
            probe: None,
        }
    }

    /// Overrides the round cap. The default is `2n + 2` rounds — strictly
    /// above the paper's `2D + 1` upper bound, so a capped run is a
    /// counterexample to Theorem 3.1/3.3 rather than an artefact.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Selects the simulator backend (the default is
    /// [`FloodEngine::Frontier`]). The produced [`FloodingRun`] is
    /// engine-independent for the static engines; [`FloodEngine::Dynamic`]
    /// changes the workload itself (mid-flood churn).
    #[must_use]
    pub fn with_engine(mut self, engine: FloodEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Floods under an **explicit** churn schedule on the
    /// [`DynamicFlooding`] engine (superseding a [`FloodEngine::Dynamic`]
    /// spec's generated schedule). The empty schedule reproduces the
    /// frontier engine's record bit for bit.
    ///
    /// # Panics
    ///
    /// [`AmnesiacFlooding::run`] panics if a churn schedule is combined
    /// with the [`FloodEngine::Fast`], [`FloodEngine::Sharded`], or
    /// [`FloodEngine::BitLane`] engines — churn floods run on the dynamic
    /// engine only, and silently switching engines would mislabel the
    /// record (the CLI rejects the same combinations as argument errors).
    #[must_use]
    pub fn with_churn(mut self, schedule: ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// Attaches a round-level observer (see [`crate::obs::FloodProbe`]).
    /// The probe is handed to the engine **before** seeding, so it
    /// receives the flood-start record, one start/finish pair per round,
    /// and the flood-end record. Attaching an
    /// [`crate::obs::NdjsonTraceWriter`] here is how
    /// `flood --trace-out` produces its NDJSON trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use af_core::obs::NdjsonTraceWriter;
    /// use af_core::AmnesiacFlooding;
    /// use af_graph::generators;
    /// use std::cell::RefCell;
    /// use std::rc::Rc;
    ///
    /// let g = generators::cycle(6);
    /// let writer = Rc::new(RefCell::new(NdjsonTraceWriter::new(Vec::new())));
    /// let run = AmnesiacFlooding::single_source(&g, 0.into())
    ///     .with_probe(writer.clone())
    ///     .run();
    /// assert_eq!(run.termination_round(), Some(3));
    /// let trace = writer.borrow_mut().take_sink();
    /// // start + 3 rounds + end = 5 NDJSON lines.
    /// assert_eq!(trace.iter().filter(|&&b| b == b'\n').count(), 5);
    /// ```
    #[must_use]
    pub fn with_probe(mut self, probe: SharedProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The sources this flood will start from.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Executes the flood and collects the full run record.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range, or if an explicit churn
    /// schedule is combined with the sharded engine (see
    /// [`AmnesiacFlooding::with_churn`]).
    #[must_use]
    pub fn run(&self) -> FloodingRun {
        let cap = self
            .max_rounds
            // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
            .unwrap_or_else(|| 2 * self.graph.node_count() as u32 + 2);
        let mut sim: Box<dyn Flooder + '_> = match (&self.churn, self.engine) {
            (Some(_), FloodEngine::Fast | FloodEngine::Sharded { .. } | FloodEngine::BitLane) => {
                panic!(
                    "churn floods run on the dynamic engine; do not combine \
                 with_churn with the fast, sharded, or bitlane engines"
                )
            }
            // Explicit schedule (replay / hand-built) supersedes the
            // engine choice; the empty schedule is bit-identical to
            // frontier, so nothing is mislabeled.
            (Some(schedule), _) => Box::new(DynamicFlooding::new(self.graph, [], schedule.clone())),
            (None, engine) => engine.flooder(self.graph, cap),
        };
        if let Some(probe) = &self.probe {
            sim.set_probe(Some(probe.clone()));
        }
        sim.reset(&mut self.sources.iter().copied());
        let outcome = sim.run(cap);
        self.collect(&*sim, outcome)
    }

    /// Assembles the engine-independent run record from a finished
    /// simulator's receipts and counters. The record covers the
    /// simulator's **final** node count — join churn can grow the node
    /// space past the input graph's mid-flood.
    fn collect(&self, sim: &dyn Flooder, outcome: Outcome) -> FloodingRun {
        let receive_rounds = sim.receive_rounds();
        let rounds_executed = outcome.rounds_executed();
        let mut round_sets: Vec<Vec<NodeId>> = vec![Vec::new(); rounds_executed as usize + 1];
        let mut sorted_sources = self.sources.clone();
        sorted_sources.sort_unstable();
        sorted_sources.dedup();
        round_sets[0] = sorted_sources.clone();
        for (i, rounds) in receive_rounds.iter().enumerate() {
            for &r in rounds {
                round_sets[r as usize].push(NodeId::new(i));
            }
        }

        FloodingRun::new_internal(
            outcome,
            sorted_sources,
            receive_rounds,
            round_sets,
            sim.messages_per_round().to_vec(),
            sim.total_messages(),
        )
    }
}

/// The complete record of one flooding execution.
///
/// All the objects the paper reasons about are exposed directly: the
/// round-sets `R_0, R_1, …` from the Theorem 3.1 proof, per-node receive
/// rounds, the termination round, and message counts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FloodingRun {
    outcome: Outcome,
    sources: Vec<NodeId>,
    receive_rounds: Vec<Vec<u32>>,
    round_sets: Vec<Vec<NodeId>>,
    messages_per_round: Vec<u64>,
    total_messages: u64,
}

impl FloodingRun {
    fn new_internal(
        outcome: Outcome,
        sources: Vec<NodeId>,
        receive_rounds: Vec<Vec<u32>>,
        round_sets: Vec<Vec<NodeId>>,
        messages_per_round: Vec<u64>,
        total_messages: u64,
    ) -> Self {
        FloodingRun {
            outcome,
            sources,
            receive_rounds,
            round_sets,
            messages_per_round,
            total_messages,
        }
    }

    /// Returns `true` if the flood terminated within the round cap.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.outcome.is_terminated()
    }

    /// The paper's termination time: the last round in which any edge
    /// carried the message. `None` if the cap was reached first.
    #[must_use]
    pub fn termination_round(&self) -> Option<u32> {
        self.outcome.termination_round()
    }

    /// Number of rounds executed (equals the termination round for
    /// terminated runs).
    #[must_use]
    pub fn rounds_executed(&self) -> u32 {
        self.outcome.rounds_executed()
    }

    /// The engine-level outcome.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// The (sorted, deduplicated) source set.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The round-set `R_i`: nodes receiving the message at round `i`
    /// (`R_0` is the source set, by the paper's convention), sorted by node
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the number of executed rounds.
    #[must_use]
    pub fn round_set(&self, i: u32) -> &[NodeId] {
        &self.round_sets[i as usize]
    }

    /// All round-sets `R_0 ..= R_T`.
    #[must_use]
    pub fn round_sets(&self) -> &[Vec<NodeId>] {
        &self.round_sets
    }

    /// Number of nodes of the flooded graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.receive_rounds.len()
    }

    /// The rounds at which `v` received the message, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_rounds(&self, v: NodeId) -> &[u32] {
        &self.receive_rounds[v.index()]
    }

    /// How many times `v` received the message over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_count(&self, v: NodeId) -> usize {
        self.receive_rounds[v.index()].len()
    }

    /// The maximum receive count over all nodes (the paper's theory bounds
    /// this by 2).
    #[must_use]
    pub fn max_receive_count(&self) -> usize {
        self.receive_rounds.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of nodes that received the message at least once.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.receive_rounds.iter().filter(|r| !r.is_empty()).count()
    }

    /// Total point-to-point messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages delivered per executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }
}

/// Summary statistics of one flood executed by a [`FloodBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodStats {
    outcome: Outcome,
    total_messages: u64,
}

impl FloodStats {
    /// The engine-level outcome.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// The termination round, or `None` if the round cap was reached.
    #[must_use]
    pub fn termination_round(&self) -> Option<u32> {
        self.outcome.termination_round()
    }

    /// Returns `true` if the flood terminated within the cap.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.outcome.is_terminated()
    }

    /// Total point-to-point messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }
}

/// Batched multi-source flood runner: executes many floods on one graph
/// through a single reusable simulator ([`FrontierFlooding`] by default,
/// [`crate::ShardedFlooding`] or the bit-parallel [`BitLaneFlooding`] via
/// [`FloodBatch::with_engine`]), so per-flood cost is the intrinsic
/// `O(messages)` work with **no per-source allocation**. On the bitlane
/// engine, [`FloodBatch::run_many`] additionally advances up to 64 floods
/// per simulator pass.
///
/// Receipt recording is off (the batch reports [`FloodStats`], not full
/// schedules), which is what makes [`FrontierFlooding::reset`] constant
/// amortized overhead. This is the engine under the throughput benchmark
/// and the E13 scaling experiment.
///
/// # Examples
///
/// ```
/// use af_core::FloodBatch;
/// use af_graph::generators;
///
/// let g = generators::cycle(9);
/// let mut batch = FloodBatch::new(&g);
/// // C9 is vertex-transitive: every source gives 2D + 1 = 9 rounds.
/// for stats in batch.run_all_single_sources() {
///     assert_eq!(stats.termination_round(), Some(9));
///     assert_eq!(stats.total_messages(), 18); // 2m
/// }
/// ```
#[derive(Debug)]
pub struct FloodBatch<'g> {
    /// The batch's graph (for the dynamic engine: the pristine base graph
    /// every flood restarts from, not the mid-churn snapshot).
    graph: &'g Graph,
    sim: Box<dyn Flooder + 'g>,
    max_rounds: Option<u32>,
    /// The spec behind a *generated* dynamic schedule (None for the
    /// static engines and for explicit [`FloodBatch::with_churn`]
    /// schedules), kept so [`FloodBatch::with_max_rounds`] can regenerate
    /// the schedule to match a new cap — churn must cover every round the
    /// batch can execute.
    churn_spec: Option<ChurnSpec>,
}

impl<'g> FloodBatch<'g> {
    /// Creates a batch runner for `graph` on the default
    /// ([`FloodEngine::Frontier`]) engine.
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        FloodBatch::with_engine(graph, FloodEngine::Frontier)
    }

    /// Creates a batch runner on an explicit engine. The sharded backend
    /// partitions the graph once and reuses the shards (and every worker
    /// allocation) across all floods of the batch — but each
    /// [`run_from`](FloodBatch::run_from) call spawns its worker threads
    /// afresh (see [`crate::ShardedFlooding::run`]), so on very short
    /// floods the spawn cost can dominate; the sharded backend earns its
    /// keep on floods whose rounds carry real work.
    #[must_use]
    pub fn with_engine(graph: &'g Graph, engine: FloodEngine) -> Self {
        // Streamed dynamic deltas: O(graph) memory at this horizon.
        // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
        let horizon = 2 * graph.node_count() as u32 + 2;
        let mut sim = engine.flooder(graph, horizon);
        sim.set_record_receipts(false);
        FloodBatch {
            graph,
            sim,
            max_rounds: None,
            churn_spec: match engine {
                FloodEngine::Dynamic { churn } => Some(churn),
                _ => None,
            },
        }
    }

    /// Creates a batch runner on the [`DynamicFlooding`] engine with an
    /// **explicit** churn schedule. Every flood of the batch starts from
    /// the pristine base graph and replays the same schedule, so batches
    /// stay deterministic and floods comparable. The empty schedule makes
    /// every flood bit-identical to the frontier engine's.
    #[must_use]
    pub fn with_churn(graph: &'g Graph, schedule: ChurnSchedule) -> Self {
        let mut sim = DynamicFlooding::new(graph, [], schedule);
        sim.set_record_receipts(false);
        FloodBatch {
            graph,
            sim: Box::new(sim),
            max_rounds: None,
            churn_spec: None,
        }
    }

    /// Overrides the per-flood round cap (default `2n + 2`, strictly above
    /// the paper's `2D + 1` bound). On a [`FloodEngine::Dynamic`]-built
    /// batch this also regenerates the churn schedule to the new horizon,
    /// so every executable round stays covered by the spec'd churn
    /// (explicit [`FloodBatch::with_churn`] schedules are kept verbatim).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        if let Some(churn) = self.churn_spec {
            let mut fresh = DynamicFlooding::with_spec(self.graph, [], churn, max_rounds);
            fresh.set_record_receipts(false);
            self.sim = Box::new(fresh);
        }
        self
    }

    /// Attaches (or with `None`, detaches) a round-level observer on the
    /// batch's simulator (see [`crate::obs::FloodProbe`]): every
    /// subsequent flood of the batch reports its start, rounds, and end
    /// through the probe. Attach **after** the builder methods —
    /// [`FloodBatch::with_max_rounds`] can rebuild the simulator on the
    /// dynamic engine, dropping an earlier probe.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.sim.set_probe(probe);
    }

    /// The graph this batch floods (for the dynamic engine: the pristine
    /// base graph every flood starts from, not the mid-churn snapshot).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The per-flood round cap currently in force.
    fn cap(&self) -> u32 {
        self.max_rounds
            // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
            .unwrap_or_else(|| 2 * self.graph.node_count() as u32 + 2)
    }

    /// Runs one flood from `sources`, reusing the simulator's allocations.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run_from<I>(&mut self, sources: I) -> FloodStats
    where
        I: IntoIterator<Item = NodeId>,
    {
        let cap = self.cap();
        self.sim.reset(&mut sources.into_iter());
        FloodStats {
            outcome: self.sim.run(cap),
            // One flood at a time: the all-lane total is the flood's own
            // even on the (single-lane-occupied) bitlane engine.
            total_messages: self.sim.total_messages(),
        }
    }

    /// Runs one flood per source set, in order, and returns one
    /// [`FloodStats`] per set (see [`FloodBatch::run_many_into`]).
    pub fn run_many(&mut self, source_sets: &[Vec<NodeId>]) -> Vec<FloodStats> {
        let mut out = Vec::with_capacity(source_sets.len());
        self.run_many_into(source_sets, &mut out);
        out
    }

    /// Runs one flood per source set, in order, appending one
    /// [`FloodStats`] per set to `out`. On a multi-lane engine (the
    /// [`FloodEngine::BitLane`] engine's [`Flooder::lane_capacity`] is 64)
    /// the sets are chunked into full-width lane groups and each group
    /// floods in one bit-parallel run — `chunks` leaves the final partial
    /// group exactly `len % 64` lanes wide (or a full 64 when the count
    /// divides evenly), so no lane is ever padded or dropped. Single-lane
    /// engines flood the sets one by one via [`FloodBatch::run_from`]. A
    /// warm batch appends into spare `out` capacity without touching the
    /// allocator.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run_many_into(&mut self, source_sets: &[Vec<NodeId>], out: &mut Vec<FloodStats>) {
        let lanes = self.sim.lane_capacity();
        if lanes == 1 {
            for set in source_sets {
                let stats = self.run_from(set.iter().copied());
                out.push(stats);
            }
            return;
        }
        let cap = self.cap();
        for chunk in source_sets.chunks(lanes) {
            self.sim.reset_lanes(chunk);
            self.sim.run(cap);
            for lane in 0..chunk.len() {
                out.push(FloodStats {
                    outcome: self.sim.lane_outcome(lane),
                    total_messages: self.sim.lane_messages(lane),
                });
            }
        }
    }

    /// Runs one single-source flood from every node of the graph, in node
    /// order — `n` floods, one simulator, zero *per-flood* reallocations
    /// (on the bitlane engine: `⌈n / 64⌉` bit-parallel runs).
    pub fn run_all_single_sources(&mut self) -> Vec<FloodStats> {
        let sets: Vec<Vec<NodeId>> = self.graph().nodes().map(|s| vec![s]).collect();
        self.run_many(&sets)
    }
}

/// Convenience free function: single-source AF with default cap.
///
/// # Examples
///
/// ```
/// use af_core::flood;
/// use af_graph::generators;
///
/// let run = flood(&generators::cycle(3), 0.into());
/// assert_eq!(run.termination_round(), Some(3)); // Figure 2: 2D + 1
/// ```
#[must_use]
pub fn flood(graph: &Graph, source: NodeId) -> FloodingRun {
    AmnesiacFlooding::single_source(graph, source).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    #[test]
    fn figure1_complete_record() {
        let g = generators::path(4);
        let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
        assert!(run.terminated());
        assert_eq!(run.termination_round(), Some(2));
        assert_eq!(run.rounds_executed(), 2);
        assert_eq!(run.sources(), &[1.into()]);
        assert_eq!(run.round_set(0), &[1.into()]);
        assert_eq!(run.round_set(1), &[0.into(), 2.into()]);
        assert_eq!(run.round_set(2), &[3.into()]);
        assert_eq!(run.receive_rounds(0.into()), &[1]);
        assert_eq!(run.receive_rounds(1.into()), &[] as &[u32]);
        assert_eq!(run.receive_rounds(3.into()), &[2]);
        assert_eq!(run.total_messages(), 3); // = m on a bipartite graph
        assert_eq!(run.messages_per_round(), &[2, 1]);
        assert_eq!(run.informed_count(), 3);
        assert_eq!(run.max_receive_count(), 1);
    }

    #[test]
    fn triangle_nodes_receive_at_most_twice() {
        let g = generators::cycle(3);
        let run = flood(&g, 1.into());
        assert_eq!(run.termination_round(), Some(3));
        // a and c receive in rounds 1 and 2; b receives in round 3.
        assert_eq!(run.receive_rounds(0.into()), &[1, 2]);
        assert_eq!(run.receive_rounds(2.into()), &[1, 2]);
        assert_eq!(run.receive_rounds(1.into()), &[3]);
        assert_eq!(run.max_receive_count(), 2);
        assert_eq!(run.total_messages(), 6);
    }

    #[test]
    fn default_cap_is_generous_enough_for_theory() {
        // 2n + 2 > 2D + 1 always, so terminating graphs always terminate.
        for g in [
            generators::cycle(9),
            generators::barbell(5),
            generators::lollipop(4, 6),
        ] {
            let run = flood(&g, 0.into());
            assert!(run.terminated(), "{g}");
        }
    }

    #[test]
    fn explicit_cap_is_respected() {
        let g = generators::cycle(3);
        let run = AmnesiacFlooding::single_source(&g, 0.into())
            .with_max_rounds(2)
            .run();
        assert!(!run.terminated());
        assert_eq!(run.termination_round(), None);
        assert_eq!(run.rounds_executed(), 2);
    }

    #[test]
    fn multi_source_round_zero_is_source_set() {
        let g = generators::cycle(8);
        let run = AmnesiacFlooding::multi_source(&g, [4.into(), 0.into(), 4.into()]).run();
        assert_eq!(run.round_set(0), &[0.into(), 4.into()]);
        assert!(run.terminated());
    }

    #[test]
    fn round_sets_union_covers_connected_graph() {
        let g = generators::petersen();
        let run = flood(&g, 0.into());
        assert_eq!(run.informed_count(), 10);
        let mut all: Vec<NodeId> = run.round_sets().iter().skip(1).flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10, "every node appears in some R_i, i >= 1");
    }

    #[test]
    fn outcome_roundtrip() {
        let g = generators::path(3);
        let run = flood(&g, 0.into());
        assert_eq!(
            run.outcome(),
            Outcome::Terminated {
                last_active_round: 2
            }
        );
    }

    #[test]
    fn batch_matches_individual_runs() {
        let g = generators::petersen();
        let mut batch = FloodBatch::new(&g);
        for v in g.nodes() {
            let stats = batch.run_from([v]);
            let run = flood(&g, v);
            assert_eq!(stats.termination_round(), run.termination_round(), "{v}");
            assert_eq!(stats.total_messages(), run.total_messages(), "{v}");
            assert!(stats.terminated());
            assert_eq!(stats.outcome(), run.outcome());
        }
    }

    #[test]
    fn batch_all_sources_covers_every_node() {
        let g = generators::lollipop(4, 5);
        let mut batch = FloodBatch::new(&g);
        let all = batch.run_all_single_sources();
        assert_eq!(all.len(), g.node_count());
        for (v, stats) in g.nodes().zip(&all) {
            assert_eq!(
                stats.termination_round(),
                flood(&g, v).termination_round(),
                "{v}"
            );
        }
    }

    #[test]
    fn batch_multi_source_and_cap() {
        let g = generators::cycle(3);
        let mut batch = FloodBatch::new(&g).with_max_rounds(2);
        let stats = batch.run_from([0.into()]);
        assert!(!stats.terminated());
        assert_eq!(stats.termination_round(), None);

        let g = generators::cycle(8);
        let mut batch = FloodBatch::new(&g);
        let stats = batch.run_from([0.into(), 4.into()]);
        let run = AmnesiacFlooding::multi_source(&g, [0.into(), 4.into()]).run();
        assert_eq!(stats.termination_round(), run.termination_round());
        assert_eq!(stats.total_messages(), run.total_messages());
    }

    #[test]
    fn engine_choice_does_not_change_the_record() {
        use af_graph::PartitionStrategy;
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        for strategy in PartitionStrategy::all() {
            for threads in [1, 2, 4] {
                let sharded = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
                    .with_engine(FloodEngine::Sharded { threads, strategy })
                    .run();
                assert_eq!(base, sharded, "{strategy} x{threads}");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_frontier_batch() {
        use af_graph::PartitionStrategy;
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut sharded = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded {
                threads: 3,
                strategy: PartitionStrategy::Bfs,
            },
        );
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), sharded.run_from([v]), "{v}");
        }
        assert_eq!(sharded.graph().node_count(), g.node_count());

        // Cap behaviour is engine-independent too.
        let g = generators::cycle(3);
        let mut capped = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded {
                threads: 2,
                strategy: PartitionStrategy::Contiguous,
            },
        )
        .with_max_rounds(2);
        assert!(!capped.run_from([0.into()]).terminated());
    }

    #[test]
    fn default_engine_is_frontier() {
        assert_eq!(FloodEngine::default(), FloodEngine::Frontier);
    }

    #[test]
    fn fast_engine_does_not_change_the_record() {
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        let fast = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_engine(FloodEngine::Fast)
            .run();
        assert_eq!(base, fast);

        let mut frontier = FloodBatch::new(&g);
        let mut fast = FloodBatch::with_engine(&g, FloodEngine::Fast);
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), fast.run_from([v]), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "churn floods run on the dynamic engine")]
    fn churn_with_fast_engine_is_rejected_not_silently_switched() {
        let g = generators::cycle(6);
        let _ = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::Fast)
            .with_churn(ChurnSchedule::empty())
            .run();
    }

    #[test]
    fn engine_display_is_canonical() {
        assert_eq!(FloodEngine::Frontier.to_string(), "frontier");
        assert_eq!(FloodEngine::Fast.to_string(), "fast");
        assert_eq!(FloodEngine::BitLane.to_string(), "bitlane");
        assert_eq!(
            FloodEngine::Sharded {
                threads: 3,
                strategy: PartitionStrategy::RoundRobin,
            }
            .to_string(),
            "sharded:3:round-robin"
        );
        assert_eq!(
            FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            }
            .to_string(),
            "dynamic:none"
        );
        assert_eq!(
            FloodEngine::Dynamic {
                churn: "mix:50:7".parse().unwrap(),
            }
            .to_string(),
            "dynamic:mix:50:7"
        );
    }

    #[test]
    fn engine_from_str_accepts_shorthands() {
        assert_eq!("frontier".parse(), Ok(FloodEngine::Frontier));
        assert_eq!("fast".parse(), Ok(FloodEngine::Fast));
        assert_eq!("bitlane".parse(), Ok(FloodEngine::BitLane));
        assert_eq!(
            "sharded".parse(),
            Ok(FloodEngine::Sharded {
                threads: DEFAULT_SHARD_THREADS,
                strategy: PartitionStrategy::Bfs,
            })
        );
        assert_eq!(
            "sharded:7".parse(),
            Ok(FloodEngine::Sharded {
                threads: 7,
                strategy: PartitionStrategy::Bfs,
            })
        );
        assert_eq!(
            "sharded:2:contiguous".parse(),
            Ok(FloodEngine::Sharded {
                threads: 2,
                strategy: PartitionStrategy::Contiguous,
            })
        );
        assert_eq!(
            "dynamic".parse(),
            Ok(FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            })
        );
        assert_eq!(
            "dynamic:edge:200:4".parse::<FloodEngine>().unwrap(),
            FloodEngine::Dynamic {
                churn: "edge:200:4".parse().unwrap(),
            }
        );
    }

    #[test]
    fn engine_from_str_rejects_malformed_strings() {
        for bad in [
            "",
            "warp",
            "frontier:2",
            "fast:1",
            "bitlane:64",
            "sharded:x",
            "sharded:2:zigzag",
            "dynamic:mix:50", // churn needs kind:rate:seed
            "dynamic:mix:50:7:9",
            "Frontier", // case-sensitive: one canonical spelling
        ] {
            assert!(bad.parse::<FloodEngine>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn engine_string_roundtrip_on_named_cases() {
        let engines = [
            FloodEngine::Frontier,
            FloodEngine::Fast,
            FloodEngine::BitLane,
            FloodEngine::Sharded {
                threads: 0,
                strategy: PartitionStrategy::Bfs,
            },
            FloodEngine::Sharded {
                threads: 16,
                strategy: PartitionStrategy::Contiguous,
            },
            FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            },
            FloodEngine::Dynamic {
                churn: "nodes:1000:0".parse().unwrap(),
            },
        ];
        for engine in engines {
            assert_eq!(engine.to_string().parse(), Ok(engine), "{engine}");
        }
    }

    #[test]
    fn bitlane_engine_does_not_change_the_record() {
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        let bitlane = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_engine(FloodEngine::BitLane)
            .run();
        assert_eq!(base, bitlane);

        // Cap behaviour is engine-independent too.
        let g = generators::cycle(3);
        let capped = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::BitLane)
            .with_max_rounds(2)
            .run();
        assert!(!capped.terminated());
        assert_eq!(capped.rounds_executed(), 2);
    }

    #[test]
    fn bitlane_batch_matches_frontier_batch() {
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut bitlane = FloodBatch::with_engine(&g, FloodEngine::BitLane);
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), bitlane.run_from([v]), "{v}");
        }
        assert_eq!(
            frontier.run_all_single_sources(),
            bitlane.run_all_single_sources()
        );
    }

    #[test]
    fn run_many_chunking_boundaries_match_run_from() {
        // The classic partial-word boundaries: under one word (n < 64),
        // exactly one word, one over, and a multi-word tail (% 64 != 0).
        let g = generators::petersen();
        let mut frontier = FloodBatch::new(&g);
        let mut bitlane = FloodBatch::with_engine(&g, FloodEngine::BitLane);
        for floods in [1usize, 2, 63, 64, 65, 128, 130] {
            let sets: Vec<Vec<NodeId>> = (0..floods)
                .map(|i| vec![NodeId::new(i % g.node_count())])
                .collect();
            let want: Vec<FloodStats> = sets
                .iter()
                .map(|s| frontier.run_from(s.iter().copied()))
                .collect();
            let got = bitlane.run_many(&sets);
            assert_eq!(got, want, "{floods} floods");
            // The generic path chunks identically from a warm batch.
            let mut again = Vec::new();
            bitlane.run_many_into(&sets, &mut again);
            assert_eq!(again, want, "{floods} floods (into)");
        }
    }

    #[test]
    fn run_many_on_frontier_engine_matches_run_from() {
        let g = generators::petersen();
        let sets: Vec<Vec<NodeId>> = vec![
            vec![0.into()],
            vec![3.into(), 7.into()],
            vec![1.into(), 2.into(), 9.into()],
        ];
        let mut batch = FloodBatch::new(&g);
        let via_many = batch.run_many(&sets);
        let via_from: Vec<FloodStats> = sets
            .iter()
            .map(|s| batch.run_from(s.iter().copied()))
            .collect();
        assert_eq!(via_many, via_from);
    }

    #[test]
    fn bitlane_batch_respects_the_cap_per_flood() {
        let g = generators::cycle(3);
        let mut batch = FloodBatch::with_engine(&g, FloodEngine::BitLane).with_max_rounds(2);
        let stats = batch.run_from([0.into()]);
        assert!(!stats.terminated());
        let many = batch.run_many(&[vec![0.into()], vec![1.into()]]);
        assert!(many.iter().all(|s| !s.terminated()));
    }

    #[test]
    #[should_panic(expected = "churn floods run on the dynamic engine")]
    fn churn_with_bitlane_engine_is_rejected_not_silently_switched() {
        let g = generators::cycle(6);
        let _ = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::BitLane)
            .with_churn(ChurnSchedule::empty())
            .run();
    }

    #[test]
    fn dynamic_engine_with_no_churn_matches_frontier_record() {
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        // Zero-rate spec through the engine enum.
        let via_spec = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_engine(FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            })
            .run();
        assert_eq!(base, via_spec);
        // Explicit empty schedule through the builder.
        let via_schedule = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_churn(ChurnSchedule::empty())
            .run();
        assert_eq!(base, via_schedule);
    }

    #[test]
    fn dynamic_engine_runs_generated_churn_deterministically() {
        let g = generators::grid(5, 5);
        let churn: ChurnSpec = "mix:100:3".parse().unwrap();
        let engine = FloodEngine::Dynamic { churn };
        let a = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(engine)
            .run();
        let b = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(engine)
            .run();
        assert_eq!(a, b, "same spec, same record");
        // The record stays well-formed even if churn grew the node space.
        assert!(a.node_count() >= g.node_count());
        assert!(a.total_messages() > 0);
    }

    #[test]
    fn dynamic_batch_with_empty_schedule_matches_frontier_batch() {
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut dynamic = FloodBatch::with_churn(&g, ChurnSchedule::empty());
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), dynamic.run_from([v]), "{v}");
        }
        assert_eq!(dynamic.graph().node_count(), g.node_count());

        // The engine-enum construction path behaves identically.
        let mut via_engine = FloodBatch::with_engine(
            &g,
            FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            },
        );
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), via_engine.run_from([v]), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "churn floods run on the dynamic engine")]
    fn churn_with_sharded_engine_is_rejected_not_silently_switched() {
        let g = generators::cycle(6);
        let _ = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::Sharded {
                threads: 2,
                strategy: PartitionStrategy::Bfs,
            })
            .with_churn(ChurnSchedule::empty())
            .run();
    }

    #[test]
    fn dynamic_batch_regenerates_the_schedule_for_a_larger_cap() {
        let g = generators::petersen();
        let churn: ChurnSpec = "edge:200:4".parse().unwrap();
        // Raising the cap must extend the generated churn horizon to
        // match: the batch behaves exactly like one whose schedule was
        // generated at the new horizon in the first place.
        let cap = 3 * (2 * g.node_count() as u32 + 2);
        let mut via_engine =
            FloodBatch::with_engine(&g, FloodEngine::Dynamic { churn }).with_max_rounds(cap);
        let mut via_schedule = FloodBatch::with_churn(&g, ChurnSchedule::generate(&g, churn, cap))
            .with_max_rounds(cap);
        for v in g.nodes() {
            assert_eq!(via_engine.run_from([v]), via_schedule.run_from([v]), "{v}");
        }
    }

    #[test]
    fn dynamic_batch_replays_the_same_schedule_per_flood() {
        let g = generators::petersen();
        let churn: ChurnSpec = "edge:150:9".parse().unwrap();
        let mut batch = FloodBatch::with_engine(&g, FloodEngine::Dynamic { churn });
        let first = batch.run_from([0.into()]);
        let again = batch.run_from([0.into()]);
        assert_eq!(first, again, "reset restores the base graph + schedule");
        // graph() reports the pristine base even after churned floods.
        assert_eq!(batch.graph().node_count(), g.node_count());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn run_serializes() {
        let g = generators::cycle(5);
        let run = flood(&g, 0.into());
        let json = serde_json::to_string(&run).unwrap();
        let back: FloodingRun = serde_json::from_str(&json).unwrap();
        assert_eq!(run, back);
    }
}
