//! High-level drivers: configure a flood, run it, inspect everything the
//! paper talks about (round-sets `R_i`, receive rounds, termination round,
//! message complexity) — plus [`FloodBatch`], the batched multi-source
//! runner that floods one graph from many sources while reusing a single
//! simulator's allocations.
//!
//! Both drivers default to the frontier-sparse [`FrontierFlooding`] engine
//! and can be switched to the multicore [`crate::ShardedFlooding`] backend
//! through [`FloodEngine`] — the two produce bit-identical records.

use crate::bitlane::{BitLaneFlooding, LANES};
use crate::dynamic::DynamicFlooding;
use crate::frontier::FrontierFlooding;
use crate::sharded::ShardedFlooding;
use af_engine::Outcome;
use af_graph::dynamic::{ChurnSchedule, ChurnSpec};
use af_graph::{Graph, NodeId, Partition, PartitionStrategy};

/// Which simulator a driver executes floods with.
///
/// The static engines ([`FloodEngine::Frontier`], [`FloodEngine::Sharded`])
/// produce the same [`FloodingRun`] / [`FloodStats`] for the same inputs
/// (the property suites enforce this); between them the choice is purely a
/// performance matter — `Frontier` is the single-threaded hot path,
/// `Sharded` splits each flood's rounds over worker threads and wins once
/// per-round frontiers are large enough to amortize the round barrier (see
/// the README's benchmarking notes).
///
/// [`FloodEngine::Dynamic`] changes the *workload*, not just the runtime:
/// it floods while the topology churns per its [`ChurnSpec`] (schedule
/// generated deterministically per graph). With a zero-rate spec it is
/// bit-identical to `Frontier` — the anchor the test suites pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloodEngine {
    /// Single-threaded frontier-sparse engine ([`FrontierFlooding`]).
    #[default]
    Frontier,
    /// Sharded multicore engine ([`crate::ShardedFlooding`]): one flood
    /// across `threads` worker shards.
    Sharded {
        /// Worker thread (= shard) count; `0` and `1` both mean one shard.
        threads: usize,
        /// How nodes are assigned to shards.
        strategy: PartitionStrategy,
    },
    /// Dynamic-graph engine ([`DynamicFlooding`]): the deterministic
    /// per-round deltas described by `churn` are **streamed** to the
    /// round boundaries mid-flood (identical to flooding under
    /// [`ChurnSchedule::generate`] at the driver's round cap, but in
    /// `O(graph)` memory at any scale). Termination is a *measurement*
    /// here, not a theorem.
    Dynamic {
        /// The churn workload; `ChurnSpec::NONE` means an empty schedule.
        churn: ChurnSpec,
    },
    /// Bit-parallel engine ([`BitLaneFlooding`]): packs up to 64
    /// independent floods into the bit lanes of one `u64` per arc and
    /// advances them all in a single CSR pass per round. A single flood
    /// occupies lane 0 alone; the engine pays off through
    /// [`FloodBatch::run_many`], which chunks a flood list into 64-lane
    /// groups.
    BitLane,
}

/// Builder for an amnesiac-flooding execution ([C-BUILDER]).
///
/// # Examples
///
/// ```
/// use af_core::AmnesiacFlooding;
/// use af_graph::generators;
///
/// // Figure 1: flood the line 0-1-2-3 from node 1.
/// let g = generators::path(4);
/// let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
/// assert_eq!(run.termination_round(), Some(2));
/// assert_eq!(run.round_set(2), &[3.into()]); // R2 = {d}
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct AmnesiacFlooding<'g> {
    graph: &'g Graph,
    sources: Vec<NodeId>,
    max_rounds: Option<u32>,
    engine: FloodEngine,
    /// Explicit churn schedule (replay / hand-built). Takes precedence
    /// over a [`FloodEngine::Dynamic`] spec's generated schedule.
    churn: Option<ChurnSchedule>,
}

impl<'g> AmnesiacFlooding<'g> {
    /// A flood started by the single distinguished node `source` (the
    /// paper's main setting).
    #[must_use]
    pub fn single_source(graph: &'g Graph, source: NodeId) -> Self {
        AmnesiacFlooding {
            graph,
            sources: vec![source],
            max_rounds: None,
            engine: FloodEngine::Frontier,
            churn: None,
        }
    }

    /// A flood started simultaneously by every node in `sources` (the full
    /// paper's multi-source extension).
    #[must_use]
    pub fn multi_source<I>(graph: &'g Graph, sources: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        AmnesiacFlooding {
            graph,
            sources: sources.into_iter().collect(),
            max_rounds: None,
            engine: FloodEngine::Frontier,
            churn: None,
        }
    }

    /// Overrides the round cap. The default is `2n + 2` rounds — strictly
    /// above the paper's `2D + 1` upper bound, so a capped run is a
    /// counterexample to Theorem 3.1/3.3 rather than an artefact.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Selects the simulator backend (the default is
    /// [`FloodEngine::Frontier`]). The produced [`FloodingRun`] is
    /// engine-independent for the static engines; [`FloodEngine::Dynamic`]
    /// changes the workload itself (mid-flood churn).
    #[must_use]
    pub fn with_engine(mut self, engine: FloodEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Floods under an **explicit** churn schedule on the
    /// [`DynamicFlooding`] engine (superseding a [`FloodEngine::Dynamic`]
    /// spec's generated schedule). The empty schedule reproduces the
    /// frontier engine's record bit for bit.
    ///
    /// # Panics
    ///
    /// [`AmnesiacFlooding::run`] panics if a churn schedule is combined
    /// with the [`FloodEngine::Sharded`] or [`FloodEngine::BitLane`]
    /// engines — churn floods run on the dynamic engine only, and silently
    /// switching engines would mislabel the record (the CLI rejects the
    /// same combinations as argument errors).
    #[must_use]
    pub fn with_churn(mut self, schedule: ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// The sources this flood will start from.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Executes the flood and collects the full run record.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range, or if an explicit churn
    /// schedule is combined with the sharded engine (see
    /// [`AmnesiacFlooding::with_churn`]).
    #[must_use]
    pub fn run(&self) -> FloodingRun {
        let cap = self
            .max_rounds
            .unwrap_or_else(|| 2 * self.graph.node_count() as u32 + 2);
        let sources = self.sources.iter().copied();
        let dynamic_sim = match (&self.churn, self.engine) {
            (Some(_), FloodEngine::Sharded { .. } | FloodEngine::BitLane) => panic!(
                "churn floods run on the dynamic engine; do not combine \
                 with_churn with the sharded or bitlane engines"
            ),
            (Some(schedule), _) => {
                Some(DynamicFlooding::new(self.graph, sources, schedule.clone()))
            }
            (None, FloodEngine::Dynamic { churn }) => {
                // Streamed: the per-round deltas are generated on demand,
                // never materialized — O(graph) memory at any scale.
                Some(DynamicFlooding::with_spec(self.graph, sources, churn, cap))
            }
            (None, _) => None,
        };
        if let Some(mut sim) = dynamic_sim {
            let outcome = sim.run(cap);
            // Joins may have grown the node space; the record covers the
            // final node count.
            return self.collect(
                sim.node_count(),
                outcome,
                |v| sim.receipts(v),
                sim.messages_per_round(),
                sim.total_messages(),
            );
        }
        match self.engine {
            FloodEngine::Frontier => {
                let mut sim = FrontierFlooding::new(self.graph, self.sources.iter().copied());
                let outcome = sim.run(cap);
                self.collect(
                    self.graph.node_count(),
                    outcome,
                    |v| sim.receipts(v),
                    sim.messages_per_round(),
                    sim.total_messages(),
                )
            }
            FloodEngine::Sharded { threads, strategy } => {
                let mut sim = ShardedFlooding::with_strategy(
                    self.graph,
                    strategy,
                    threads,
                    self.sources.iter().copied(),
                );
                let outcome = sim.run(cap);
                self.collect(
                    self.graph.node_count(),
                    outcome,
                    |v| sim.receipts(v),
                    sim.messages_per_round(),
                    sim.total_messages(),
                )
            }
            FloodEngine::BitLane => {
                let mut sim = BitLaneFlooding::new(self.graph, [self.sources.iter().copied()]);
                let outcome = sim.run(cap);
                let n = self.graph.node_count();
                // Unpack lane 0's receipts from the (round, lane mask)
                // pairs into the per-node round lists `collect` consumes.
                let receipts: Vec<Vec<u32>> = (0..n)
                    .map(|i| sim.lane_receipts(NodeId::new(i), 0))
                    .collect();
                self.collect(
                    n,
                    outcome,
                    |v| receipts[v.index()].as_slice(),
                    sim.messages_per_round(),
                    sim.total_messages(),
                )
            }
            FloodEngine::Dynamic { .. } => unreachable!("handled by the schedule path above"),
        }
    }

    /// Assembles the engine-independent run record from a finished
    /// simulator's receipts and counters. `n` is the simulator's final
    /// node count (it can exceed the input graph's under join churn).
    fn collect<'a, F>(
        &self,
        n: usize,
        outcome: Outcome,
        receipts: F,
        messages_per_round: &[u64],
        total_messages: u64,
    ) -> FloodingRun
    where
        F: Fn(NodeId) -> &'a [u32],
    {
        let mut receive_rounds = Vec::with_capacity(n);
        for v in (0..n).map(NodeId::new) {
            receive_rounds.push(receipts(v).to_vec());
        }
        let rounds_executed = outcome.rounds_executed();
        let mut round_sets: Vec<Vec<NodeId>> = vec![Vec::new(); rounds_executed as usize + 1];
        let mut sorted_sources = self.sources.clone();
        sorted_sources.sort_unstable();
        sorted_sources.dedup();
        round_sets[0] = sorted_sources.clone();
        for v in (0..n).map(NodeId::new) {
            for &r in receipts(v) {
                round_sets[r as usize].push(v);
            }
        }

        FloodingRun::new_internal(
            outcome,
            sorted_sources,
            receive_rounds,
            round_sets,
            messages_per_round.to_vec(),
            total_messages,
        )
    }
}

/// The complete record of one flooding execution.
///
/// All the objects the paper reasons about are exposed directly: the
/// round-sets `R_0, R_1, …` from the Theorem 3.1 proof, per-node receive
/// rounds, the termination round, and message counts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FloodingRun {
    outcome: Outcome,
    sources: Vec<NodeId>,
    receive_rounds: Vec<Vec<u32>>,
    round_sets: Vec<Vec<NodeId>>,
    messages_per_round: Vec<u64>,
    total_messages: u64,
}

impl FloodingRun {
    fn new_internal(
        outcome: Outcome,
        sources: Vec<NodeId>,
        receive_rounds: Vec<Vec<u32>>,
        round_sets: Vec<Vec<NodeId>>,
        messages_per_round: Vec<u64>,
        total_messages: u64,
    ) -> Self {
        FloodingRun {
            outcome,
            sources,
            receive_rounds,
            round_sets,
            messages_per_round,
            total_messages,
        }
    }

    /// Returns `true` if the flood terminated within the round cap.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.outcome.is_terminated()
    }

    /// The paper's termination time: the last round in which any edge
    /// carried the message. `None` if the cap was reached first.
    #[must_use]
    pub fn termination_round(&self) -> Option<u32> {
        self.outcome.termination_round()
    }

    /// Number of rounds executed (equals the termination round for
    /// terminated runs).
    #[must_use]
    pub fn rounds_executed(&self) -> u32 {
        self.outcome.rounds_executed()
    }

    /// The engine-level outcome.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// The (sorted, deduplicated) source set.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The round-set `R_i`: nodes receiving the message at round `i`
    /// (`R_0` is the source set, by the paper's convention), sorted by node
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the number of executed rounds.
    #[must_use]
    pub fn round_set(&self, i: u32) -> &[NodeId] {
        &self.round_sets[i as usize]
    }

    /// All round-sets `R_0 ..= R_T`.
    #[must_use]
    pub fn round_sets(&self) -> &[Vec<NodeId>] {
        &self.round_sets
    }

    /// Number of nodes of the flooded graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.receive_rounds.len()
    }

    /// The rounds at which `v` received the message, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_rounds(&self, v: NodeId) -> &[u32] {
        &self.receive_rounds[v.index()]
    }

    /// How many times `v` received the message over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receive_count(&self, v: NodeId) -> usize {
        self.receive_rounds[v.index()].len()
    }

    /// The maximum receive count over all nodes (the paper's theory bounds
    /// this by 2).
    #[must_use]
    pub fn max_receive_count(&self) -> usize {
        self.receive_rounds.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of nodes that received the message at least once.
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.receive_rounds.iter().filter(|r| !r.is_empty()).count()
    }

    /// Total point-to-point messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages delivered per executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }
}

/// Summary statistics of one flood executed by a [`FloodBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodStats {
    outcome: Outcome,
    total_messages: u64,
}

impl FloodStats {
    /// The engine-level outcome.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// The termination round, or `None` if the round cap was reached.
    #[must_use]
    pub fn termination_round(&self) -> Option<u32> {
        self.outcome.termination_round()
    }

    /// Returns `true` if the flood terminated within the cap.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.outcome.is_terminated()
    }

    /// Total point-to-point messages delivered.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }
}

/// Batched multi-source flood runner: executes many floods on one graph
/// through a single reusable simulator ([`FrontierFlooding`] by default,
/// [`crate::ShardedFlooding`] or the bit-parallel [`BitLaneFlooding`] via
/// [`FloodBatch::with_engine`]), so per-flood cost is the intrinsic
/// `O(messages)` work with **no per-source allocation**. On the bitlane
/// engine, [`FloodBatch::run_many`] additionally advances up to 64 floods
/// per simulator pass.
///
/// Receipt recording is off (the batch reports [`FloodStats`], not full
/// schedules), which is what makes [`FrontierFlooding::reset`] constant
/// amortized overhead. This is the engine under the throughput benchmark
/// and the E13 scaling experiment.
///
/// # Examples
///
/// ```
/// use af_core::FloodBatch;
/// use af_graph::generators;
///
/// let g = generators::cycle(9);
/// let mut batch = FloodBatch::new(&g);
/// // C9 is vertex-transitive: every source gives 2D + 1 = 9 rounds.
/// for stats in batch.run_all_single_sources() {
///     assert_eq!(stats.termination_round(), Some(9));
///     assert_eq!(stats.total_messages(), 18); // 2m
/// }
/// ```
#[derive(Debug)]
pub struct FloodBatch<'g> {
    sim: BatchSim<'g>,
    max_rounds: Option<u32>,
    /// The spec behind a *generated* dynamic schedule (None for the
    /// static engines and for explicit [`FloodBatch::with_churn`]
    /// schedules), kept so [`FloodBatch::with_max_rounds`] can regenerate
    /// the schedule to match a new cap — churn must cover every round the
    /// batch can execute.
    churn_spec: Option<ChurnSpec>,
}

/// The reusable simulator inside a [`FloodBatch`].
#[derive(Debug)]
enum BatchSim<'g> {
    Frontier(FrontierFlooding<'g>),
    Sharded(ShardedFlooding<'g>),
    /// Owns its (churning) graph state; `reset` restores the base graph.
    /// Boxed: the owned graphs make it much larger than the borrowing
    /// variants, and a batch holds exactly one simulator.
    Dynamic(Box<DynamicFlooding>),
    /// Boxed for the same reason: the inline per-lane termination and
    /// message arrays (64 lanes each) dwarf the borrowing variants.
    BitLane(Box<BitLaneFlooding<'g>>),
}

impl<'g> FloodBatch<'g> {
    /// Creates a batch runner for `graph` on the default
    /// ([`FloodEngine::Frontier`]) engine.
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        FloodBatch::with_engine(graph, FloodEngine::Frontier)
    }

    /// Creates a batch runner on an explicit engine. The sharded backend
    /// partitions the graph once and reuses the shards (and every worker
    /// allocation) across all floods of the batch — but each
    /// [`run_from`](FloodBatch::run_from) call spawns its worker threads
    /// afresh (see [`crate::ShardedFlooding::run`]), so on very short
    /// floods the spawn cost can dominate; the sharded backend earns its
    /// keep on floods whose rounds carry real work.
    #[must_use]
    pub fn with_engine(graph: &'g Graph, engine: FloodEngine) -> Self {
        let sim = match engine {
            FloodEngine::Frontier => {
                let mut sim = FrontierFlooding::new(graph, []);
                sim.set_record_receipts(false);
                BatchSim::Frontier(sim)
            }
            FloodEngine::Sharded { threads, strategy } => {
                let mut sim =
                    ShardedFlooding::new(graph, Partition::new(graph, strategy, threads), []);
                sim.set_record_receipts(false);
                BatchSim::Sharded(sim)
            }
            FloodEngine::Dynamic { churn } => {
                // Streamed deltas: O(graph) memory at any horizon.
                let horizon = 2 * graph.node_count() as u32 + 2;
                let mut sim = DynamicFlooding::with_spec(graph, [], churn, horizon);
                sim.set_record_receipts(false);
                return FloodBatch {
                    sim: BatchSim::Dynamic(Box::new(sim)),
                    max_rounds: None,
                    churn_spec: Some(churn),
                };
            }
            FloodEngine::BitLane => {
                let mut sim = BitLaneFlooding::new(graph, core::iter::empty::<[NodeId; 0]>());
                sim.set_record_receipts(false);
                BatchSim::BitLane(Box::new(sim))
            }
        };
        FloodBatch {
            sim,
            max_rounds: None,
            churn_spec: None,
        }
    }

    /// Creates a batch runner on the [`DynamicFlooding`] engine with an
    /// **explicit** churn schedule. Every flood of the batch starts from
    /// the pristine base graph and replays the same schedule, so batches
    /// stay deterministic and floods comparable. The empty schedule makes
    /// every flood bit-identical to the frontier engine's.
    #[must_use]
    pub fn with_churn(graph: &'g Graph, schedule: ChurnSchedule) -> Self {
        let mut sim = DynamicFlooding::new(graph, [], schedule);
        sim.set_record_receipts(false);
        FloodBatch {
            sim: BatchSim::Dynamic(Box::new(sim)),
            max_rounds: None,
            churn_spec: None,
        }
    }

    /// Overrides the per-flood round cap (default `2n + 2`, strictly above
    /// the paper's `2D + 1` bound). On a [`FloodEngine::Dynamic`]-built
    /// batch this also regenerates the churn schedule to the new horizon,
    /// so every executable round stays covered by the spec'd churn
    /// (explicit [`FloodBatch::with_churn`] schedules are kept verbatim).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        if let (Some(churn), BatchSim::Dynamic(sim)) = (self.churn_spec, &mut self.sim) {
            let base = sim.base_graph().clone();
            let mut fresh = DynamicFlooding::with_spec(&base, [], churn, max_rounds);
            fresh.set_record_receipts(false);
            **sim = fresh;
        }
        self
    }

    /// The graph this batch floods (for the dynamic engine: the pristine
    /// base graph every flood starts from, not the mid-churn snapshot).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        match &self.sim {
            BatchSim::Frontier(sim) => sim.graph(),
            BatchSim::Sharded(sim) => sim.graph(),
            BatchSim::Dynamic(sim) => sim.base_graph(),
            BatchSim::BitLane(sim) => sim.graph(),
        }
    }

    /// Runs one flood from `sources`, reusing the simulator's allocations.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run_from<I>(&mut self, sources: I) -> FloodStats
    where
        I: IntoIterator<Item = NodeId>,
    {
        let cap = self
            .max_rounds
            .unwrap_or_else(|| 2 * self.graph().node_count() as u32 + 2);
        match &mut self.sim {
            BatchSim::Frontier(sim) => {
                sim.reset(sources);
                FloodStats {
                    outcome: sim.run(cap),
                    total_messages: sim.total_messages(),
                }
            }
            BatchSim::Sharded(sim) => {
                sim.reset(sources);
                FloodStats {
                    outcome: sim.run(cap),
                    total_messages: sim.total_messages(),
                }
            }
            BatchSim::Dynamic(sim) => {
                sim.reset(sources);
                FloodStats {
                    outcome: sim.run(cap),
                    total_messages: sim.total_messages(),
                }
            }
            // A single flood occupies lane 0 alone; with one lane the
            // all-lane outcome and message total are the lane's own.
            BatchSim::BitLane(sim) => {
                sim.reset([sources]);
                FloodStats {
                    outcome: sim.run(cap),
                    total_messages: sim.total_messages(),
                }
            }
        }
    }

    /// Runs one flood per source set, in order, and returns one
    /// [`FloodStats`] per set (see [`FloodBatch::run_many_into`]).
    pub fn run_many(&mut self, source_sets: &[Vec<NodeId>]) -> Vec<FloodStats> {
        let mut out = Vec::with_capacity(source_sets.len());
        self.run_many_into(source_sets, &mut out);
        out
    }

    /// Runs one flood per source set, in order, appending one
    /// [`FloodStats`] per set to `out`. On the [`FloodEngine::BitLane`]
    /// engine the sets are chunked into groups of up to 64 bit lanes and
    /// each group floods in one bit-parallel run — `chunks` leaves the
    /// final partial group exactly `len % 64` lanes wide (or a full 64
    /// when the count divides evenly), so no lane is ever padded or
    /// dropped. Every other engine floods the sets one by one via
    /// [`FloodBatch::run_from`]. A warm batch appends into spare `out`
    /// capacity without touching the allocator.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn run_many_into(&mut self, source_sets: &[Vec<NodeId>], out: &mut Vec<FloodStats>) {
        if !matches!(self.sim, BatchSim::BitLane(_)) {
            for set in source_sets {
                let stats = self.run_from(set.iter().copied());
                out.push(stats);
            }
            return;
        }
        let cap = self
            .max_rounds
            .unwrap_or_else(|| 2 * self.graph().node_count() as u32 + 2);
        let BatchSim::BitLane(sim) = &mut self.sim else {
            unreachable!("checked above");
        };
        for chunk in source_sets.chunks(LANES) {
            sim.reset(chunk.iter().map(|set| set.iter().copied()));
            sim.run(cap);
            debug_assert_eq!(sim.lane_count(), chunk.len());
            for lane in 0..chunk.len() {
                out.push(FloodStats {
                    outcome: sim.lane_outcome(lane),
                    total_messages: sim.lane_messages(lane),
                });
            }
        }
    }

    /// Runs one single-source flood from every node of the graph, in node
    /// order — `n` floods, one simulator, zero *per-flood* reallocations
    /// (on the bitlane engine: `⌈n / 64⌉` bit-parallel runs).
    pub fn run_all_single_sources(&mut self) -> Vec<FloodStats> {
        let sets: Vec<Vec<NodeId>> = self.graph().nodes().map(|s| vec![s]).collect();
        self.run_many(&sets)
    }
}

/// Convenience free function: single-source AF with default cap.
///
/// # Examples
///
/// ```
/// use af_core::flood;
/// use af_graph::generators;
///
/// let run = flood(&generators::cycle(3), 0.into());
/// assert_eq!(run.termination_round(), Some(3)); // Figure 2: 2D + 1
/// ```
#[must_use]
pub fn flood(graph: &Graph, source: NodeId) -> FloodingRun {
    AmnesiacFlooding::single_source(graph, source).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    #[test]
    fn figure1_complete_record() {
        let g = generators::path(4);
        let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
        assert!(run.terminated());
        assert_eq!(run.termination_round(), Some(2));
        assert_eq!(run.rounds_executed(), 2);
        assert_eq!(run.sources(), &[1.into()]);
        assert_eq!(run.round_set(0), &[1.into()]);
        assert_eq!(run.round_set(1), &[0.into(), 2.into()]);
        assert_eq!(run.round_set(2), &[3.into()]);
        assert_eq!(run.receive_rounds(0.into()), &[1]);
        assert_eq!(run.receive_rounds(1.into()), &[] as &[u32]);
        assert_eq!(run.receive_rounds(3.into()), &[2]);
        assert_eq!(run.total_messages(), 3); // = m on a bipartite graph
        assert_eq!(run.messages_per_round(), &[2, 1]);
        assert_eq!(run.informed_count(), 3);
        assert_eq!(run.max_receive_count(), 1);
    }

    #[test]
    fn triangle_nodes_receive_at_most_twice() {
        let g = generators::cycle(3);
        let run = flood(&g, 1.into());
        assert_eq!(run.termination_round(), Some(3));
        // a and c receive in rounds 1 and 2; b receives in round 3.
        assert_eq!(run.receive_rounds(0.into()), &[1, 2]);
        assert_eq!(run.receive_rounds(2.into()), &[1, 2]);
        assert_eq!(run.receive_rounds(1.into()), &[3]);
        assert_eq!(run.max_receive_count(), 2);
        assert_eq!(run.total_messages(), 6);
    }

    #[test]
    fn default_cap_is_generous_enough_for_theory() {
        // 2n + 2 > 2D + 1 always, so terminating graphs always terminate.
        for g in [
            generators::cycle(9),
            generators::barbell(5),
            generators::lollipop(4, 6),
        ] {
            let run = flood(&g, 0.into());
            assert!(run.terminated(), "{g}");
        }
    }

    #[test]
    fn explicit_cap_is_respected() {
        let g = generators::cycle(3);
        let run = AmnesiacFlooding::single_source(&g, 0.into())
            .with_max_rounds(2)
            .run();
        assert!(!run.terminated());
        assert_eq!(run.termination_round(), None);
        assert_eq!(run.rounds_executed(), 2);
    }

    #[test]
    fn multi_source_round_zero_is_source_set() {
        let g = generators::cycle(8);
        let run = AmnesiacFlooding::multi_source(&g, [4.into(), 0.into(), 4.into()]).run();
        assert_eq!(run.round_set(0), &[0.into(), 4.into()]);
        assert!(run.terminated());
    }

    #[test]
    fn round_sets_union_covers_connected_graph() {
        let g = generators::petersen();
        let run = flood(&g, 0.into());
        assert_eq!(run.informed_count(), 10);
        let mut all: Vec<NodeId> = run.round_sets().iter().skip(1).flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10, "every node appears in some R_i, i >= 1");
    }

    #[test]
    fn outcome_roundtrip() {
        let g = generators::path(3);
        let run = flood(&g, 0.into());
        assert_eq!(
            run.outcome(),
            Outcome::Terminated {
                last_active_round: 2
            }
        );
    }

    #[test]
    fn batch_matches_individual_runs() {
        let g = generators::petersen();
        let mut batch = FloodBatch::new(&g);
        for v in g.nodes() {
            let stats = batch.run_from([v]);
            let run = flood(&g, v);
            assert_eq!(stats.termination_round(), run.termination_round(), "{v}");
            assert_eq!(stats.total_messages(), run.total_messages(), "{v}");
            assert!(stats.terminated());
            assert_eq!(stats.outcome(), run.outcome());
        }
    }

    #[test]
    fn batch_all_sources_covers_every_node() {
        let g = generators::lollipop(4, 5);
        let mut batch = FloodBatch::new(&g);
        let all = batch.run_all_single_sources();
        assert_eq!(all.len(), g.node_count());
        for (v, stats) in g.nodes().zip(&all) {
            assert_eq!(
                stats.termination_round(),
                flood(&g, v).termination_round(),
                "{v}"
            );
        }
    }

    #[test]
    fn batch_multi_source_and_cap() {
        let g = generators::cycle(3);
        let mut batch = FloodBatch::new(&g).with_max_rounds(2);
        let stats = batch.run_from([0.into()]);
        assert!(!stats.terminated());
        assert_eq!(stats.termination_round(), None);

        let g = generators::cycle(8);
        let mut batch = FloodBatch::new(&g);
        let stats = batch.run_from([0.into(), 4.into()]);
        let run = AmnesiacFlooding::multi_source(&g, [0.into(), 4.into()]).run();
        assert_eq!(stats.termination_round(), run.termination_round());
        assert_eq!(stats.total_messages(), run.total_messages());
    }

    #[test]
    fn engine_choice_does_not_change_the_record() {
        use af_graph::PartitionStrategy;
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        for strategy in PartitionStrategy::all() {
            for threads in [1, 2, 4] {
                let sharded = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
                    .with_engine(FloodEngine::Sharded { threads, strategy })
                    .run();
                assert_eq!(base, sharded, "{strategy} x{threads}");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_frontier_batch() {
        use af_graph::PartitionStrategy;
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut sharded = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded {
                threads: 3,
                strategy: PartitionStrategy::Bfs,
            },
        );
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), sharded.run_from([v]), "{v}");
        }
        assert_eq!(sharded.graph().node_count(), g.node_count());

        // Cap behaviour is engine-independent too.
        let g = generators::cycle(3);
        let mut capped = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded {
                threads: 2,
                strategy: PartitionStrategy::Contiguous,
            },
        )
        .with_max_rounds(2);
        assert!(!capped.run_from([0.into()]).terminated());
    }

    #[test]
    fn default_engine_is_frontier() {
        assert_eq!(FloodEngine::default(), FloodEngine::Frontier);
    }

    #[test]
    fn bitlane_engine_does_not_change_the_record() {
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        let bitlane = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_engine(FloodEngine::BitLane)
            .run();
        assert_eq!(base, bitlane);

        // Cap behaviour is engine-independent too.
        let g = generators::cycle(3);
        let capped = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::BitLane)
            .with_max_rounds(2)
            .run();
        assert!(!capped.terminated());
        assert_eq!(capped.rounds_executed(), 2);
    }

    #[test]
    fn bitlane_batch_matches_frontier_batch() {
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut bitlane = FloodBatch::with_engine(&g, FloodEngine::BitLane);
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), bitlane.run_from([v]), "{v}");
        }
        assert_eq!(
            frontier.run_all_single_sources(),
            bitlane.run_all_single_sources()
        );
    }

    #[test]
    fn run_many_chunking_boundaries_match_run_from() {
        // The classic partial-word boundaries: under one word (n < 64),
        // exactly one word, one over, and a multi-word tail (% 64 != 0).
        let g = generators::petersen();
        let mut frontier = FloodBatch::new(&g);
        let mut bitlane = FloodBatch::with_engine(&g, FloodEngine::BitLane);
        for floods in [1usize, 2, 63, 64, 65, 128, 130] {
            let sets: Vec<Vec<NodeId>> = (0..floods)
                .map(|i| vec![NodeId::new(i % g.node_count())])
                .collect();
            let want: Vec<FloodStats> = sets
                .iter()
                .map(|s| frontier.run_from(s.iter().copied()))
                .collect();
            let got = bitlane.run_many(&sets);
            assert_eq!(got, want, "{floods} floods");
            // The generic path chunks identically from a warm batch.
            let mut again = Vec::new();
            bitlane.run_many_into(&sets, &mut again);
            assert_eq!(again, want, "{floods} floods (into)");
        }
    }

    #[test]
    fn run_many_on_frontier_engine_matches_run_from() {
        let g = generators::petersen();
        let sets: Vec<Vec<NodeId>> = vec![
            vec![0.into()],
            vec![3.into(), 7.into()],
            vec![1.into(), 2.into(), 9.into()],
        ];
        let mut batch = FloodBatch::new(&g);
        let via_many = batch.run_many(&sets);
        let via_from: Vec<FloodStats> = sets
            .iter()
            .map(|s| batch.run_from(s.iter().copied()))
            .collect();
        assert_eq!(via_many, via_from);
    }

    #[test]
    fn bitlane_batch_respects_the_cap_per_flood() {
        let g = generators::cycle(3);
        let mut batch = FloodBatch::with_engine(&g, FloodEngine::BitLane).with_max_rounds(2);
        let stats = batch.run_from([0.into()]);
        assert!(!stats.terminated());
        let many = batch.run_many(&[vec![0.into()], vec![1.into()]]);
        assert!(many.iter().all(|s| !s.terminated()));
    }

    #[test]
    #[should_panic(expected = "churn floods run on the dynamic engine")]
    fn churn_with_bitlane_engine_is_rejected_not_silently_switched() {
        let g = generators::cycle(6);
        let _ = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::BitLane)
            .with_churn(ChurnSchedule::empty())
            .run();
    }

    #[test]
    fn dynamic_engine_with_no_churn_matches_frontier_record() {
        let g = generators::petersen();
        let base = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()]).run();
        // Zero-rate spec through the engine enum.
        let via_spec = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_engine(FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            })
            .run();
        assert_eq!(base, via_spec);
        // Explicit empty schedule through the builder.
        let via_schedule = AmnesiacFlooding::multi_source(&g, [0.into(), 6.into()])
            .with_churn(ChurnSchedule::empty())
            .run();
        assert_eq!(base, via_schedule);
    }

    #[test]
    fn dynamic_engine_runs_generated_churn_deterministically() {
        let g = generators::grid(5, 5);
        let churn: ChurnSpec = "mix:100:3".parse().unwrap();
        let engine = FloodEngine::Dynamic { churn };
        let a = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(engine)
            .run();
        let b = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(engine)
            .run();
        assert_eq!(a, b, "same spec, same record");
        // The record stays well-formed even if churn grew the node space.
        assert!(a.node_count() >= g.node_count());
        assert!(a.total_messages() > 0);
    }

    #[test]
    fn dynamic_batch_with_empty_schedule_matches_frontier_batch() {
        let g = generators::lollipop(4, 5);
        let mut frontier = FloodBatch::new(&g);
        let mut dynamic = FloodBatch::with_churn(&g, ChurnSchedule::empty());
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), dynamic.run_from([v]), "{v}");
        }
        assert_eq!(dynamic.graph().node_count(), g.node_count());

        // The engine-enum construction path behaves identically.
        let mut via_engine = FloodBatch::with_engine(
            &g,
            FloodEngine::Dynamic {
                churn: ChurnSpec::NONE,
            },
        );
        for v in g.nodes() {
            assert_eq!(frontier.run_from([v]), via_engine.run_from([v]), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "churn floods run on the dynamic engine")]
    fn churn_with_sharded_engine_is_rejected_not_silently_switched() {
        let g = generators::cycle(6);
        let _ = AmnesiacFlooding::single_source(&g, 0.into())
            .with_engine(FloodEngine::Sharded {
                threads: 2,
                strategy: PartitionStrategy::Bfs,
            })
            .with_churn(ChurnSchedule::empty())
            .run();
    }

    #[test]
    fn dynamic_batch_regenerates_the_schedule_for_a_larger_cap() {
        let g = generators::petersen();
        let churn: ChurnSpec = "edge:200:4".parse().unwrap();
        // Raising the cap must extend the generated churn horizon to
        // match: the batch behaves exactly like one whose schedule was
        // generated at the new horizon in the first place.
        let cap = 3 * (2 * g.node_count() as u32 + 2);
        let mut via_engine =
            FloodBatch::with_engine(&g, FloodEngine::Dynamic { churn }).with_max_rounds(cap);
        let mut via_schedule = FloodBatch::with_churn(&g, ChurnSchedule::generate(&g, churn, cap))
            .with_max_rounds(cap);
        for v in g.nodes() {
            assert_eq!(via_engine.run_from([v]), via_schedule.run_from([v]), "{v}");
        }
    }

    #[test]
    fn dynamic_batch_replays_the_same_schedule_per_flood() {
        let g = generators::petersen();
        let churn: ChurnSpec = "edge:150:9".parse().unwrap();
        let mut batch = FloodBatch::with_engine(&g, FloodEngine::Dynamic { churn });
        let first = batch.run_from([0.into()]);
        let again = batch.run_from([0.into()]);
        assert_eq!(first, again, "reset restores the base graph + schedule");
        // graph() reports the pristine base even after churned floods.
        assert_eq!(batch.graph().node_count(), g.node_count());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn run_serializes() {
        let g = generators::cycle(5);
        let run = flood(&g, 0.into());
        let json = serde_json::to_string(&run).unwrap();
        let back: FloodingRun = serde_json::from_str(&json).unwrap();
        assert_eq!(run, back);
    }
}
