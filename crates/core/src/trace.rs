//! Human-readable round-by-round rendering of flooding executions — the
//! textual analogue of the paper's Figures 1, 2, 3 and 5.
//!
//! Nodes of small graphs are labelled `a, b, c, …` to mirror the figures;
//! larger graphs fall back to numeric labels.

use crate::run::FloodingRun;
use af_engine::InFlightMessage;
use af_graph::{ArcId, Graph, NodeId};
use std::fmt::Write as _;

/// Renders a node label: letters for graphs with at most 26 nodes, the
/// numeric id otherwise.
#[must_use]
pub fn node_label(v: NodeId, n: usize) -> String {
    if n <= 26 {
        // af-audit: allow(no-lossy-id-cast): v.index() < n <= 26 in this branch
        char::from(b'a' + v.index() as u8).to_string()
    } else {
        v.index().to_string()
    }
}

/// Renders one arc as `tail->head` with node labels.
#[must_use]
pub fn arc_label(graph: &Graph, arc: ArcId) -> String {
    let (t, h) = graph.arc_endpoints(arc);
    let n = graph.node_count();
    format!("{}->{}", node_label(t, n), node_label(h, n))
}

/// Renders a complete synchronous run in the style of the paper's figures:
/// one line per round listing the senders (the figures circle sending
/// nodes) and the messages on the wire.
///
/// # Examples
///
/// ```
/// use af_core::{trace, AmnesiacFlooding};
/// use af_graph::generators;
///
/// // Figure 1: the line a-b-c-d flooded from b.
/// let g = generators::path(4);
/// let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
/// let text = trace::render_run(&g, &run);
/// assert!(text.contains("round 1"));
/// assert!(text.contains("b->a"));
/// assert!(text.contains("terminated after round 2"));
/// ```
#[must_use]
pub fn render_run(graph: &Graph, run: &FloodingRun) -> String {
    let n = graph.node_count();
    let mut out = String::new();
    let sources: Vec<String> = run.sources().iter().map(|&v| node_label(v, n)).collect();
    let _ = writeln!(
        out,
        "amnesiac flooding on {graph} from {{{}}}",
        sources.join(", ")
    );

    // Reconstruct per-round arc traffic by replaying (cheap, and keeps the
    // run record compact). The replay is exact because AF is deterministic.
    let mut sim = crate::fast::FastFlooding::new(graph, run.sources().iter().copied());
    let mut round = 0u32;
    while !sim.is_terminated() && round < run.rounds_executed() {
        let arcs = sim.in_flight();
        round += 1;
        let senders: Vec<String> = {
            let mut s: Vec<NodeId> = arcs.iter().map(|&a| graph.arc_tail(a)).collect();
            s.sort_unstable();
            s.dedup();
            s.into_iter().map(|v| node_label(v, n)).collect()
        };
        let msgs: Vec<String> = arcs.iter().map(|&a| arc_label(graph, a)).collect();
        let _ = writeln!(
            out,
            "round {round}: sending {{{}}}  messages [{}]",
            senders.join(", "),
            msgs.join(", ")
        );
        sim.step();
    }
    match run.termination_round() {
        Some(t) => {
            let _ = writeln!(
                out,
                "terminated after round {t}: no edge carries the message"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "round cap reached after {} rounds",
                run.rounds_executed()
            );
        }
    }
    out
}

/// Renders an asynchronous configuration (in-flight messages with ages),
/// used by the Figure-5 example.
#[must_use]
pub fn render_configuration(graph: &Graph, msgs: &[InFlightMessage]) -> String {
    if msgs.is_empty() {
        return "(no messages in flight)".into();
    }
    msgs.iter()
        .map(|m| {
            if m.age == 0 {
                arc_label(graph, m.arc)
            } else {
                format!("{} (held {})", arc_label(graph, m.arc), m.age)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the per-node receive schedule as a table fragment.
#[must_use]
pub fn render_receipts(graph: &Graph, run: &FloodingRun) -> String {
    let n = graph.node_count();
    let mut out = String::new();
    for v in graph.nodes() {
        let rounds = run.receive_rounds(v);
        let rendered = if rounds.is_empty() {
            "-".to_string()
        } else {
            rounds
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "  {}: receives at rounds [{}]",
            node_label(v, n),
            rendered
        );
    }
    out
}

/// Renders the per-round message counts as a horizontal ASCII bar chart —
/// the "activity envelope" of a flood. Bars are scaled so the busiest
/// round fills `width` characters.
///
/// # Examples
///
/// ```
/// use af_core::{flood, trace};
/// use af_graph::generators;
///
/// let run = flood(&generators::grid(4, 4), 0.into());
/// let chart = trace::render_activity_chart(&run, 30);
/// assert!(chart.lines().count() >= 6); // one line per round
/// ```
#[must_use]
pub fn render_activity_chart(run: &FloodingRun, width: usize) -> String {
    let counts = run.messages_per_round();
    let max = counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "(no messages were ever sent)\n".to_string();
    }
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let bar_len = ((c as usize) * width).div_ceil(max as usize);
        let bar: String = core::iter::repeat_n('#', bar_len).collect();
        let _ = writeln!(out, "round {:>3} | {:<width$} {}", i + 1, bar, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{flood, AmnesiacFlooding};
    use af_graph::generators;

    #[test]
    fn figure1_text_matches_paper_narrative() {
        let g = generators::path(4);
        let run = AmnesiacFlooding::single_source(&g, 1.into()).run();
        let text = render_run(&g, &run);
        // Round 1: b sends to both neighbours.
        assert!(text.contains("round 1: sending {b}"), "{text}");
        assert!(text.contains("b->a"), "{text}");
        assert!(text.contains("b->c"), "{text}");
        // Round 2: a and c send outward; the flood dies at the ends.
        assert!(text.contains("round 2: sending {c}"), "{text}");
        assert!(text.contains("c->d"), "{text}");
        assert!(text.contains("terminated after round 2"), "{text}");
    }

    #[test]
    fn figure2_triangle_text() {
        let g = generators::cycle(3);
        let run = flood(&g, 1.into());
        let text = render_run(&g, &run);
        assert!(text.contains("round 2: sending {a, c}"), "{text}");
        assert!(text.contains("round 3"), "{text}");
        assert!(text.contains("terminated after round 3"), "{text}");
    }

    #[test]
    fn large_graphs_use_numeric_labels() {
        let g = generators::cycle(30);
        let run = flood(&g, 0.into());
        let text = render_run(&g, &run);
        assert!(text.contains("0->1"), "{text}");
        assert!(text.contains("0->29"), "{text}");
    }

    #[test]
    fn label_fallback_switches_exactly_at_27_nodes() {
        // 26 nodes: the full letter alphabet, no numerals anywhere.
        assert_eq!(node_label(NodeId::new(0), 26), "a");
        assert_eq!(node_label(NodeId::new(25), 26), "z");
        // 27 nodes: every node goes numeric, including the low ids that
        // would have fit in letters — labels within one figure never mix.
        assert_eq!(node_label(NodeId::new(0), 27), "0");
        assert_eq!(node_label(NodeId::new(25), 27), "25");
        assert_eq!(node_label(NodeId::new(26), 27), "26");
    }

    #[test]
    fn numeric_fallback_covers_every_renderer() {
        let g = generators::cycle(27);
        let run = flood(&g, NodeId::new(26));
        let text = render_run(&g, &run);
        assert!(text.contains("from {26}"), "{text}");
        assert!(text.contains("26->0"), "{text}");
        let table = render_receipts(&g, &run);
        assert!(table.contains("  0: receives at rounds ["), "{table}");
        assert!(table.contains("  26: receives at rounds ["), "{table}");
        assert!(
            !table.contains("  a: "),
            "no letter labels above 26 nodes: {table}"
        );
        let a = g.arc_between(NodeId::new(26), NodeId::new(0)).unwrap();
        let s = render_configuration(&g, &[InFlightMessage { arc: a, age: 1 }]);
        assert!(s.contains("26->0 (held 1)"), "{s}");
    }

    #[test]
    fn receipts_table_lists_every_node() {
        let g = generators::path(3);
        let run = flood(&g, 0.into());
        let table = render_receipts(&g, &run);
        assert!(table.contains("a: receives at rounds [-]"));
        assert!(table.contains("b: receives at rounds [1]"));
        assert!(table.contains("c: receives at rounds [2]"));
    }

    #[test]
    fn configuration_rendering() {
        let g = generators::cycle(3);
        let a = g.arc_between(0.into(), 1.into()).unwrap();
        let b = g.arc_between(2.into(), 1.into()).unwrap();
        let msgs = vec![
            InFlightMessage { arc: a, age: 0 },
            InFlightMessage { arc: b, age: 2 },
        ];
        let s = render_configuration(&g, &msgs);
        assert!(s.contains("a->b"));
        assert!(s.contains("c->b (held 2)"));
        assert_eq!(render_configuration(&g, &[]), "(no messages in flight)");
    }

    #[test]
    fn activity_chart_shapes() {
        let run = flood(&generators::cycle(8), 0.into());
        let chart = render_activity_chart(&run, 20);
        assert_eq!(chart.lines().count(), 4, "C8 floods for D = 4 rounds");
        assert!(chart.contains("round   1 |"), "{chart}");
        // Every line ends with its count.
        assert!(chart.lines().next().unwrap().trim_end().ends_with('2'));

        let empty = AmnesiacFlooding::multi_source(&generators::cycle(4), []).run();
        assert!(render_activity_chart(&empty, 10).contains("no messages"));
    }

    #[test]
    fn capped_runs_say_so() {
        let g = generators::cycle(3);
        let run = AmnesiacFlooding::single_source(&g, 0.into())
            .with_max_rounds(1)
            .run();
        let text = render_run(&g, &run);
        assert!(text.contains("round cap reached"), "{text}");
    }
}
