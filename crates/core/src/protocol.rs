//! The paper's protocol (Definition 1.1) and the classic baseline it is
//! contrasted with, as [`af_engine::Protocol`] implementations.

use af_engine::Protocol;
use af_graph::{Graph, NodeId};

/// **Amnesiac Flooding** (Definition 1.1 of the paper).
///
/// The initiator sends the message to all its neighbours in round 1. In
/// every later round, a node that received the message forwards a copy to
/// exactly those neighbours it did *not* receive it from in that round —
/// and remembers nothing (`State = ()`).
///
/// # Examples
///
/// ```
/// use af_core::AmnesiacFloodingProtocol;
/// use af_engine::SyncEngine;
/// use af_graph::{generators, NodeId};
///
/// let g = generators::cycle(6); // Figure 3
/// let mut e = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(0)]);
/// assert_eq!(e.run(100).termination_round(), Some(3)); // = D
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmnesiacFloodingProtocol;

impl Protocol for AmnesiacFloodingProtocol {
    type State = ();

    fn initiate(&self, node: NodeId, _state: &mut (), graph: &Graph) -> Vec<NodeId> {
        graph.neighbors(node).to_vec()
    }

    fn on_receive(
        &self,
        node: NodeId,
        from: &[NodeId],
        _state: &mut (),
        graph: &Graph,
    ) -> Vec<NodeId> {
        // `from` is sorted (engine contract), as is the neighbour list.
        graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|w| from.binary_search(w).is_err())
            .collect()
    }

    fn name(&self) -> &'static str {
        "amnesiac-flooding"
    }
}

/// **Classic flag flooding** (the baseline the paper's introduction quotes
/// from Aspnes): on first contact a node forwards to everyone it did not
/// receive from, sets a "seen" flag, and never forwards again.
///
/// # Examples
///
/// ```
/// use af_core::ClassicFloodingProtocol;
/// use af_engine::SyncEngine;
/// use af_graph::{generators, NodeId};
///
/// let g = generators::cycle(6);
/// let mut e = SyncEngine::new(&g, ClassicFloodingProtocol, [NodeId::new(0)]);
/// assert!(e.run(100).is_terminated());
/// // The flag is what guarantees termination — and what AF does without.
/// assert!(g.nodes().all(|v| *e.state(v)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassicFloodingProtocol;

impl Protocol for ClassicFloodingProtocol {
    type State = bool;

    fn initiate(&self, node: NodeId, state: &mut bool, graph: &Graph) -> Vec<NodeId> {
        *state = true;
        graph.neighbors(node).to_vec()
    }

    fn on_receive(
        &self,
        node: NodeId,
        from: &[NodeId],
        state: &mut bool,
        graph: &Graph,
    ) -> Vec<NodeId> {
        if *state {
            return Vec::new();
        }
        *state = true;
        graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|w| from.binary_search(w).is_err())
            .collect()
    }

    fn name(&self) -> &'static str {
        "classic-flooding"
    }
}

/// **k-memory flooding** — the design-space ladder between amnesiac
/// flooding and the classic flag that the paper's "designing amnesiac /
/// low-memory algorithms" application points at.
///
/// A node remembers the sender sets of its last `k` *receive events* and
/// forwards to the neighbours not among any of them:
///
/// * `k = 1` is exactly [`AmnesiacFloodingProtocol`] (remember only the
///   current round's senders);
/// * larger `k` suppresses more re-sends: on the triangle, `k = 2` already
///   terminates in 2 rounds instead of `2D + 1 = 3`;
/// * `k = 0` remembers nothing at all — it even echoes back to the sender,
///   and provably never terminates on any graph with an edge (the message
///   ping-pongs forever). Experiment E15 measures the whole ladder.
///
/// Per-node state is `O(k · Δ)` sender ids, compared to AF's zero and the
/// classic flag's one bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMemoryFlooding {
    k: usize,
}

impl KMemoryFlooding {
    /// Creates the protocol remembering the last `k` receive events.
    #[must_use]
    pub fn new(k: usize) -> Self {
        KMemoryFlooding { k }
    }

    /// The memory window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.k
    }
}

impl Protocol for KMemoryFlooding {
    /// Sender sets of the most recent `k` receive events, newest last.
    type State = std::collections::VecDeque<Vec<NodeId>>;

    fn initiate(&self, node: NodeId, _state: &mut Self::State, graph: &Graph) -> Vec<NodeId> {
        graph.neighbors(node).to_vec()
    }

    fn on_receive(
        &self,
        node: NodeId,
        from: &[NodeId],
        state: &mut Self::State,
        graph: &Graph,
    ) -> Vec<NodeId> {
        state.push_back(from.to_vec());
        while state.len() > self.k {
            state.pop_front();
        }
        graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|w| !state.iter().any(|senders| senders.binary_search(w).is_ok()))
            .collect()
    }

    fn name(&self) -> &'static str {
        "k-memory-flooding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_engine::SyncEngine;
    use af_graph::generators;

    #[test]
    fn af_on_figures() {
        // Figure 1: line from b, 2 rounds.
        let g = generators::path(4);
        let mut e = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(1)]);
        assert_eq!(e.run(100).termination_round(), Some(2));

        // Figure 2: triangle, 3 rounds = 2D + 1.
        let g = generators::cycle(3);
        let mut e = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(1)]);
        assert_eq!(e.run(100).termination_round(), Some(3));

        // Figure 3: C6, D = 3 rounds.
        let g = generators::cycle(6);
        let mut e = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(2)]);
        assert_eq!(e.run(100).termination_round(), Some(3));
    }

    #[test]
    fn af_sends_complement_of_senders() {
        let g = generators::star(5);
        let p = AmnesiacFloodingProtocol;
        // hub receives from leaves 1 and 3 -> forwards to 2 and 4.
        let targets = p.on_receive(
            NodeId::new(0),
            &[NodeId::new(1), NodeId::new(3)],
            &mut (),
            &g,
        );
        assert_eq!(targets, vec![NodeId::new(2), NodeId::new(4)]);
    }

    #[test]
    fn classic_stops_after_first_forward() {
        let g = generators::star(4);
        let p = ClassicFloodingProtocol;
        let mut st = false;
        let t1 = p.on_receive(NodeId::new(0), &[NodeId::new(1)], &mut st, &g);
        assert_eq!(t1, vec![NodeId::new(2), NodeId::new(3)]);
        assert!(st);
        let t2 = p.on_receive(NodeId::new(0), &[NodeId::new(2)], &mut st, &g);
        assert!(t2.is_empty());
    }

    #[test]
    fn initiation_reaches_all_neighbors() {
        let g = generators::complete(5);
        let p = AmnesiacFloodingProtocol;
        assert_eq!(p.initiate(NodeId::new(2), &mut (), &g).len(), 4);
        let c = ClassicFloodingProtocol;
        let mut st = false;
        assert_eq!(c.initiate(NodeId::new(2), &mut st, &g).len(), 4);
        assert!(st);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AmnesiacFloodingProtocol.name(), "amnesiac-flooding");
        assert_eq!(ClassicFloodingProtocol.name(), "classic-flooding");
        assert_eq!(KMemoryFlooding::new(2).name(), "k-memory-flooding");
        assert_eq!(KMemoryFlooding::new(2).window(), 2);
    }

    #[test]
    fn k1_memory_equals_amnesiac_flooding() {
        for g in [
            generators::cycle(7),
            generators::petersen(),
            generators::grid(3, 4),
            generators::barbell(4),
        ] {
            let mut af = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(0)]);
            let mut k1 = SyncEngine::new(&g, KMemoryFlooding::new(1), [NodeId::new(0)]);
            loop {
                assert_eq!(af.in_flight(), k1.in_flight(), "{g} round {}", af.round());
                let (a, b) = (af.step(), k1.step());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(af.total_messages(), k1.total_messages());
        }
    }

    #[test]
    fn k2_terminates_faster_on_the_triangle() {
        let g = generators::cycle(3);
        let mut e = SyncEngine::new(&g, KMemoryFlooding::new(2), [NodeId::new(1)]);
        // Round 1: b -> {a, c}; round 2: a <-> c; round 3: both remember
        // {b} and the other, so they send nothing back to b.
        assert_eq!(e.run(100).termination_round(), Some(2));
    }

    #[test]
    fn k0_never_terminates_even_on_an_edge() {
        let g = generators::path(2);
        let mut e = SyncEngine::new(&g, KMemoryFlooding::new(0), [NodeId::new(0)]);
        assert_eq!(
            e.run(100),
            af_engine::Outcome::CapReached {
                rounds_executed: 100
            }
        );
    }

    #[test]
    fn more_memory_never_increases_messages() {
        for g in [
            generators::petersen(),
            generators::complete(6),
            generators::cycle(9),
        ] {
            let mut prev = u64::MAX;
            for k in 1..=4 {
                let mut e = SyncEngine::new(&g, KMemoryFlooding::new(k), [NodeId::new(0)]);
                let out = e.run(10_000);
                assert!(out.is_terminated(), "{g} k={k}");
                assert!(
                    e.total_messages() <= prev,
                    "{g}: messages grew from {prev} to {} at k={k}",
                    e.total_messages()
                );
                prev = e.total_messages();
            }
        }
    }
}
