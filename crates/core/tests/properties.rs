//! Property-based tests for the paper's theorems on seeded random graphs.
//!
//! These are the empirical analogues of the paper's ∀-statements:
//! Theorem 3.1 (termination), Lemma 2.1 / Corollary 2.2 (bipartite
//! exactness), Theorem 3.3 (non-bipartite bound), plus the double-cover
//! consequences (receive-twice-max, parity, message complexity) and the
//! equivalence of the two independent simulator implementations.

use af_core::{roundsets, theory, AmnesiacFlooding, AmnesiacFloodingProtocol, FastFlooding};
use af_engine::SyncEngine;
use af_graph::{algo, generators, Graph, NodeId};
use proptest::prelude::*;

prop_compose! {
    /// Connected random graph, n in [1, 48], density controlled.
    fn connected_graph()(
        (n, extra, seed) in (1usize..48, 0usize..80, any::<u64>())
    ) -> Graph {
        generators::sparse_connected(n, extra, seed)
    }
}

prop_compose! {
    /// Connected random graph plus a valid source node.
    fn graph_and_source()(g in connected_graph(), raw in any::<u32>()) -> (Graph, NodeId) {
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

/// Connected bipartite graphs: a mix of the bipartite families.
fn bipartite_graph() -> BoxedStrategy<Graph> {
    prop_oneof![
        (1usize..40).prop_map(generators::path),
        (2usize..20).prop_map(|k| generators::cycle(2 * k)),
        ((1usize..6), (1usize..6)).prop_map(|(r, c)| generators::grid(r, c)),
        (1u32..5).prop_map(generators::hypercube),
        ((1usize..8), (1usize..8)).prop_map(|(a, b)| generators::complete_bipartite(a, b)),
        ((1usize..30), any::<u64>()).prop_map(|(n, seed)| generators::random_tree(n, seed)),
        ((1usize..8), (0usize..4)).prop_map(|(s, l)| generators::caterpillar(s, l)),
    ]
    .boxed()
}

prop_compose! {
    /// Connected random graph plus 1..4 sources.
    fn graph_and_sources()(
        g in connected_graph(),
        raws in proptest::collection::vec(any::<u32>(), 1..4)
    ) -> (Graph, Vec<NodeId>) {
        let sources: Vec<NodeId> = raws
            .iter()
            .map(|&r| NodeId::new(r as usize % g.node_count()))
            .collect();
        (g, sources)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Theorem 3.1: AF terminates on every finite connected graph — and
    /// within the Theorem 3.3 / Corollary 2.2 bound.
    #[test]
    fn terminates_within_paper_bound((g, s) in graph_and_source()) {
        let run = AmnesiacFlooding::single_source(&g, s).run();
        prop_assert!(run.terminated(), "Theorem 3.1 violated on {g}");
        let bound = theory::upper_bound(&g).unwrap();
        prop_assert!(
            run.termination_round().unwrap() <= bound,
            "termination {} exceeds bound {bound} on {g}",
            run.termination_round().unwrap()
        );
    }

    /// Lemma 2.1: on bipartite graphs termination is exactly the source
    /// eccentricity and every node receives exactly once, at its distance.
    #[test]
    fn bipartite_floods_are_parallel_bfs(g in bipartite_graph(), raw in any::<u32>()) {
        let s = NodeId::new(raw as usize % g.node_count());
        let run = AmnesiacFlooding::single_source(&g, s).run();
        let bfs = algo::bfs(&g, s);
        prop_assert_eq!(run.termination_round(), bfs.eccentricity());
        for v in g.nodes() {
            if v == s {
                prop_assert!(run.receive_rounds(v).is_empty());
            } else {
                prop_assert_eq!(run.receive_rounds(v), &[bfs.distance(v).unwrap()][..]);
            }
        }
    }

    /// Theorem 3.3 strictness: non-bipartite termination strictly exceeds
    /// the *source eccentricity* (every node's second parity still has to
    /// be reached), stays within 2D + 1, and from a maximum-eccentricity
    /// source strictly exceeds the diameter — the paper's "strictly larger
    /// than D".
    #[test]
    fn non_bipartite_termination_is_slow((g, s) in graph_and_source()) {
        prop_assume!(!algo::is_bipartite(&g));
        let d = algo::diameter(&g).unwrap();
        let ecc = algo::eccentricity(&g, s).unwrap();
        let run = AmnesiacFlooding::single_source(&g, s).run();
        let t = run.termination_round().unwrap();
        prop_assert!(t > ecc, "{g}: T = {t} <= e(s) = {ecc}");
        prop_assert!(t <= 2 * d + 1, "{g}: T = {t} > 2D+1 = {}", 2 * d + 1);

        // Worst-case source: eccentricity = diameter forces T > D.
        let worst = g
            .nodes()
            .max_by_key(|&v| algo::eccentricity(&g, v).unwrap())
            .unwrap();
        let t_worst = AmnesiacFlooding::single_source(&g, worst)
            .run()
            .termination_round()
            .unwrap();
        prop_assert!(t_worst > d, "{g}: worst-case T = {t_worst} <= D = {d}");
    }

    /// Double-cover oracle equals the simulation, receive round by receive
    /// round — single source.
    #[test]
    fn oracle_matches_simulation((g, s) in graph_and_source()) {
        let run = AmnesiacFlooding::single_source(&g, s).run();
        let pred = theory::predict(&g, [s]);
        prop_assert_eq!(run.termination_round(), Some(pred.termination_round()));
        prop_assert_eq!(run.total_messages(), pred.total_messages());
        for v in g.nodes() {
            prop_assert_eq!(run.receive_rounds(v), pred.receive_rounds(v), "node {}", v);
        }
    }

    /// The two independent oracle implementations (materialized double
    /// cover vs parity BFS) agree exactly.
    #[test]
    fn oracle_implementations_agree((g, sources) in graph_and_sources()) {
        let a = theory::predict(&g, sources.iter().copied());
        let b = theory::predict_via_parity(&g, sources.iter().copied());
        prop_assert_eq!(a, b);
    }

    /// Double-cover oracle equals the simulation — multi-source.
    #[test]
    fn oracle_matches_simulation_multi_source((g, sources) in graph_and_sources()) {
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        prop_assert!(run.terminated());
        let pred = theory::predict(&g, sources.iter().copied());
        prop_assert_eq!(run.termination_round(), Some(pred.termination_round()));
        prop_assert_eq!(run.total_messages(), pred.total_messages());
        for v in g.nodes() {
            prop_assert_eq!(run.receive_rounds(v), pred.receive_rounds(v), "node {}", v);
        }
    }

    /// The bitset simulator and the generic engine agree exactly.
    #[test]
    fn fast_and_engine_agree((g, sources) in graph_and_sources()) {
        let mut fast = FastFlooding::new(&g, sources.iter().copied());
        let mut engine = SyncEngine::new(&g, AmnesiacFloodingProtocol, sources.iter().copied());
        loop {
            let fast_flight = fast.in_flight();
            prop_assert_eq!(fast_flight.as_slice(), engine.in_flight());
            let (a, b) = (fast.step(), engine.step());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            prop_assert!(fast.round() < 10_000, "runaway flood on {}", g);
        }
        prop_assert_eq!(fast.total_messages(), engine.total_messages());
        for v in g.nodes() {
            prop_assert_eq!(fast.receipts(v), engine.receipts(v));
        }
    }

    /// Every node receives at most twice; two receipts have opposite
    /// parity (the engine behind Theorem 3.1).
    #[test]
    fn receive_twice_max_with_opposite_parity((g, sources) in graph_and_sources()) {
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        for v in g.nodes() {
            let rounds = run.receive_rounds(v);
            prop_assert!(rounds.len() <= 2, "{g}: node {v} received {} times", rounds.len());
            if let [a, b] = *rounds {
                prop_assert_ne!(a % 2, b % 2);
            }
        }
    }

    /// The proof's Re (even-duration recurrence sequences) is empty on
    /// every terminating run — Theorem 3.1's core invariant.
    #[test]
    fn even_duration_round_set_sequences_never_occur((g, sources) in graph_and_sources()) {
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let analysis = roundsets::analyze(&run);
        prop_assert!(analysis.even_sequences_empty());
        prop_assert!(analysis.max_occurrences() <= 2);
    }

    /// Message complexity: exactly m on bipartite graphs, exactly 2m on
    /// non-bipartite graphs (single source, connected).
    #[test]
    fn message_complexity_is_exact((g, s) in graph_and_source()) {
        let run = AmnesiacFlooding::single_source(&g, s).run();
        let m = g.edge_count() as u64;
        let expected = if algo::is_bipartite(&g) { m } else { 2 * m };
        prop_assert_eq!(run.total_messages(), expected, "{}", g);
    }

    /// Every node of a connected graph is informed (flooding is a
    /// broadcast), except that the flood needs at least one edge.
    #[test]
    fn flooding_is_a_broadcast((g, s) in graph_and_source()) {
        prop_assume!(g.node_count() >= 2);
        let run = AmnesiacFlooding::single_source(&g, s).run();
        // Every node other than the source receives; the source itself
        // receives iff some odd closed walk returns the message (it still
        // *participated*, as the origin).
        for v in g.nodes() {
            if v != s {
                prop_assert!(!run.receive_rounds(v).is_empty(), "{g}: node {v} missed");
            }
        }
    }

    /// The flooding-based bipartiteness detector agrees with the graph
    /// algorithm on every connected instance.
    #[test]
    fn detection_agrees_with_graph_algorithm((g, s) in graph_and_source()) {
        let verdict = af_core::detect::detect_bipartiteness(&g, s);
        prop_assert_eq!(verdict.is_bipartite(), algo::is_bipartite(&g));
        let timing = af_core::detect::detect_by_timing(&g, s).unwrap();
        prop_assert_eq!(timing.is_bipartite(), algo::is_bipartite(&g));
    }

    /// Determinism: the same (graph, sources) always produces the same run.
    #[test]
    fn runs_are_deterministic((g, sources) in graph_and_sources()) {
        let a = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let b = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        prop_assert_eq!(a, b);
    }

    /// The multi-source window: `e(S) ≤ T ≤ e(S) + D + 1` on every
    /// connected instance, with `T = e(S)` exactly iff the
    /// monochromatic-bipartite lemma applies, and the last *first* receipt
    /// landing at exactly `e(S)`.
    #[test]
    fn multi_source_window_is_exact((g, sources) in graph_and_sources()) {
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let t = run.termination_round().unwrap();
        let ecc = theory::set_eccentricity(&g, sources.iter().copied()).unwrap();
        let (lo, hi) = theory::termination_bounds(&g, sources.iter().copied()).unwrap();
        prop_assert!(lo <= t && t <= hi, "{}: T = {} outside [{}, {}]", g, t, lo, hi);
        match theory::bipartite_exact_set(&g, sources.iter().copied()) {
            Some(exact) => prop_assert_eq!(t, exact, "{}: monochromatic-bipartite", g),
            None if g.node_count() > 1 => prop_assert!(t > ecc, "{}: strictness", g),
            None => {}
        }
        // First receipts of non-sources are multi-source BFS distances
        // (sources themselves only hear the message back through their
        // second parity, which can land far later than e(S)).
        let bfs = algo::multi_bfs(&g, sources.iter().copied());
        for v in g.nodes() {
            if sources.contains(&v) {
                continue;
            }
            prop_assert_eq!(
                run.receive_rounds(v).first().copied(),
                bfs.distance(v),
                "{}: first receipt of {}",
                g,
                v
            );
        }
    }
}
