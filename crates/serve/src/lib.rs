//! `af-serve`: amnesiac flooding as a long-lived service.
//!
//! The other binaries in this workspace pay graph-construction and
//! double-cover costs per invocation. This crate keeps them: a daemon
//! loads graphs **once** into a named [`registry`], answers concurrent
//! requests over newline-delimited JSON — one [`protocol::Request`] per
//! line in, one [`protocol::Response`] per line out — on TCP and on
//! stdio, and caches the per-graph double-cover
//! [`af_core::theory::PredictIndex`] so every exact-time prediction
//! after the first is a zero-allocation BFS on a warm index
//! (`BENCH_serve.json` quantifies the win).
//!
//! The daemon adds **no third execution semantics**: floods run through
//! [`af_core::api::FloodRequest::execute`], the same call the CLI's
//! `flood` command and the benchmark harness make, so a response over
//! the wire is bit-identical to the in-process answer (the loopback
//! integration test pins this). Errors are
//! [`af_core::api::ErrorResponse`] values with stable codes; a
//! malformed line never kills a connection, let alone the daemon.
//!
//! Scale features, all opt-in (PROTOCOL.md documents each): wrapping a
//! request in an id [`protocol::Envelope`] routes it to a shared worker
//! pool, so heavy floods stop serializing behind each other — responses
//! come back as [`protocol::TaggedResponse`] lines, possibly out of
//! order, while bare requests keep their strict in-order semantics. A
//! registry byte budget ([`Registry::with_budget`], `--registry-budget`)
//! bounds resident graphs plus cached predict indexes by evicting the
//! least-recently-used graph; `Evict` does the same by hand.
//! `--registry-dir` pre-loads a directory of edge lists at boot, and the
//! `Bench` verb runs the measurement harness in-process so a live
//! daemon can record its own benchmark rows.
//!
//! The daemon watches itself: every request is timed into the
//! lock-free [`metrics`] block (per-verb counts and latency
//! histograms, connection/byte counters, registry footprint gauges),
//! the `Metrics` verb serves the snapshot over the wire, and a final
//! snapshot line goes to stderr when the daemon drains — see the
//! "Observability" section of the README.
//!
//! See PROTOCOL.md for the wire format, verb by verb, and the
//! "Serving" section of the README for a transcript.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod log;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use protocol::{Envelope, Request, Response, TaggedResponse};
pub use registry::Registry;
pub use server::{Server, ServerConfig};
