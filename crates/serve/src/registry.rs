//! The graph registry: named graphs loaded once, shared by every
//! connection, mutated in place, with a lazily built predict index per
//! graph.
//!
//! Locking layout, coarsest to finest:
//!
//! - [`Registry`] holds the name → entry map behind a `RwLock`; request
//!   handlers take a read lock just long enough to clone the entry's
//!   `Arc`, so `Load`/`Gen` (the only writers) never block in-flight
//!   floods.
//! - Each [`GraphEntry`] keeps an `Arc<Graph>` **snapshot** behind its
//!   own `RwLock`. Floods and predictions clone the `Arc` and drop the
//!   lock before doing any work, so arbitrarily slow floods never hold a
//!   lock; `Mutate` builds the next snapshot under the entry's
//!   [`DeltaGraph`] mutex and swaps it in atomically.
//! - The per-graph [`PredictIndex`] sits behind a mutex: the double
//!   cover is built once on the first `Predict` and every later query is
//!   a zero-allocation BFS on the warm index, until a `Mutate`
//!   invalidates it. Queries on one graph serialize (the index's scratch
//!   is reused); queries on different graphs run concurrently.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use af_core::api::{code, ErrorResponse};
use af_core::theory::{PredictIndex, PredictSummary};
use af_graph::dynamic::{DeltaGraph, GraphDelta};
use af_graph::{Graph, NodeId};
use parking_lot::{Mutex, RwLock};

use crate::metrics::{ServeMetrics, Verb};
use crate::protocol::{GraphInfo, MetricsReport, Request, Response, ServerStats};

/// One registered graph and its cached derived state.
#[derive(Debug)]
pub struct GraphEntry {
    /// The evolving topology; `Mutate` applies batches under this lock.
    delta: Mutex<DeltaGraph>,
    /// Immutable snapshot of the current topology, swapped after each
    /// mutation. Readers clone the `Arc` and work lock-free.
    snapshot: RwLock<Arc<Graph>>,
    /// Lazily built double-cover oracle over the current snapshot;
    /// `None` until the first `Predict` and again after every `Mutate`.
    index: Mutex<Option<PredictIndex>>,
    /// `Mutate` batches applied over this graph's lifetime.
    mutations: AtomicU64,
}

impl GraphEntry {
    fn new(graph: Graph) -> Self {
        GraphEntry {
            delta: Mutex::new(DeltaGraph::new(&graph)),
            snapshot: RwLock::new(Arc::new(graph)),
            index: Mutex::new(None),
            mutations: AtomicU64::new(0),
        }
    }

    /// The current topology as a cheap shared handle.
    pub fn snapshot(&self) -> Arc<Graph> {
        Arc::clone(&self.snapshot.read())
    }
}

/// The daemon's shared state: the graph map plus request counters.
///
/// Every verb funnels through [`Registry::execute`], which returns the
/// wire [`Response`] and keeps the counters honest (errors included).
/// The registry is transport-agnostic — the TCP server, the stdio
/// server, and the in-process tests all drive the same object.
#[derive(Debug, Default)]
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    requests: AtomicU64,
    errors: AtomicU64,
    metrics: ServeMetrics,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Executes one request and returns its response, counting both.
    ///
    /// [`Request::Shutdown`] is answered with
    /// [`Response::ShuttingDown`]; actually stopping the transport is
    /// the server's job (the registry has no connections to close).
    pub fn execute(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let verb = Verb::of(request);
        let started = Instant::now();
        let result = match request {
            Request::Load { name, graph } => self.load(name, graph),
            Request::Gen { name, spec } => Ok(self.register(name, spec.build())),
            Request::Predict { graph, source_sets } => self.predict(graph, source_sets),
            Request::Flood {
                graph,
                sources,
                engine,
                max_rounds,
            } => {
                let request = af_core::api::FloodRequest {
                    source_sets: vec![sources.clone()],
                    engine: engine.clone(),
                    max_rounds: *max_rounds,
                };
                self.batch(graph, &request)
            }
            Request::Batch { graph, request } => self.batch(graph, request),
            Request::Mutate { graph, deltas } => self.mutate(graph, deltas),
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Metrics => Ok(Response::Metrics(self.metrics_report())),
            Request::Shutdown => Ok(Response::ShuttingDown),
        };
        let response = result.unwrap_or_else(|e| self.reject(e));
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.observe(verb, micros);
        response
    }

    /// Wraps a failure as a [`Response::Error`], counting it — also used
    /// by the server for failures that never reach a handler (unparsable
    /// or oversized lines, requests after shutdown began).
    pub fn reject(&self, error: ErrorResponse) -> Response {
        self.errors.fetch_add(1, Ordering::Relaxed);
        Response::Error(error)
    }

    /// Counts a request the server answered without a handler (the
    /// post-shutdown error path calls [`Self::reject`] right after).
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The daemon's metric block — the transports record connection and
    /// byte counts here; [`Self::execute`] records verbs and latency.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The full metrics snapshot behind the `Metrics` verb and the
    /// final stderr flush. Recomputes the registry footprint gauges
    /// from the live graph map first, so the report is never stale.
    pub fn metrics_report(&self) -> MetricsReport {
        let mut bytes = 0u64;
        let mut indexes = 0u64;
        for entry in self.graphs.read().values() {
            bytes += approx_graph_bytes(&entry.snapshot());
            indexes += u64::from(entry.index.lock().is_some());
        }
        self.metrics.set_registry_footprint(bytes, indexes);
        self.metrics.report(
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// Looks up a registered graph's entry.
    ///
    /// # Errors
    ///
    /// [`code::UNKNOWN_GRAPH`] if no graph has that name.
    pub fn entry(&self, name: &str) -> Result<Arc<GraphEntry>, ErrorResponse> {
        self.graphs.read().get(name).map(Arc::clone).ok_or_else(|| {
            ErrorResponse::new(code::UNKNOWN_GRAPH, format!("no graph named '{name}'"))
        })
    }

    fn load(&self, name: &str, text: &str) -> Result<Response, ErrorResponse> {
        let graph = af_graph::io::from_text(text)
            .map_err(|e| ErrorResponse::new(code::BAD_GRAPH, format!("{e}")))?;
        Ok(self.register(name, graph))
    }

    fn register(&self, name: &str, graph: Graph) -> Response {
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let entry = Arc::new(GraphEntry::new(graph));
        self.graphs.write().insert(name.to_owned(), entry);
        Response::Registered {
            name: name.to_owned(),
            nodes,
            edges,
        }
    }

    fn predict(&self, name: &str, source_sets: &[Vec<usize>]) -> Result<Response, ErrorResponse> {
        let entry = self.entry(name)?;
        // The oracle itself panics on out-of-range ids, so validate
        // against the snapshot first — a malformed request must come
        // back as an error, not kill the connection.
        let n = entry.snapshot().node_count();
        for (i, set) in source_sets.iter().enumerate() {
            if let Some(&v) = set.iter().find(|&&v| v >= n) {
                return Err(ErrorResponse::new(
                    code::BAD_SOURCE,
                    format!("source {v} in set {i} out of range for {n} nodes"),
                ));
            }
        }
        let mut guard = entry.index.lock();
        let index = guard.get_or_insert_with(|| PredictIndex::new(&entry.snapshot()));
        let predictions: Vec<PredictSummary> = source_sets
            .iter()
            .map(|set| index.summary(set.iter().copied().map(NodeId::new)))
            .collect();
        Ok(Response::Predicted { predictions })
    }

    fn batch(
        &self,
        name: &str,
        request: &af_core::api::FloodRequest,
    ) -> Result<Response, ErrorResponse> {
        let snapshot = self.entry(name)?.snapshot();
        request.execute(&snapshot).map(Response::Flooded)
    }

    fn mutate(&self, name: &str, deltas: &[GraphDelta]) -> Result<Response, ErrorResponse> {
        let entry = self.entry(name)?;
        let mut delta = entry.delta.lock();
        let mut edits_applied = 0;
        let mut edits_skipped = 0;
        for batch in deltas {
            let applied = delta.apply(batch);
            edits_applied += applied.edges_deleted
                + applied.edges_inserted
                + applied.nodes_left
                + applied.nodes_joined;
            edits_skipped += applied.edits_skipped;
        }
        entry
            .mutations
            .fetch_add(deltas.len() as u64, Ordering::Relaxed);
        // Publish the new topology and drop the stale oracle while still
        // holding the delta lock, so a racing Predict can never cache an
        // index over the old snapshot after the swap.
        let nodes = delta.node_count();
        let edges = delta.edge_count();
        *entry.snapshot.write() = Arc::new(delta.graph().clone());
        *entry.index.lock() = None;
        Ok(Response::Mutated {
            name: name.to_owned(),
            nodes,
            edges,
            edits_applied,
            edits_skipped,
        })
    }

    fn stats(&self) -> ServerStats {
        let graphs = self
            .graphs
            .read()
            .iter()
            .map(|(name, entry)| {
                let snapshot = entry.snapshot();
                GraphInfo {
                    name: name.clone(),
                    nodes: snapshot.node_count(),
                    edges: snapshot.edge_count(),
                    indexed: entry.index.lock().is_some(),
                    mutations: entry.mutations.load(Ordering::Relaxed),
                }
            })
            .collect();
        let requests = self.requests.load(Ordering::Relaxed);
        ServerStats {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            uptime_secs: self.metrics.uptime_secs(),
            requests_total: requests,
            verbs: self.metrics.verb_counts(),
            graphs,
        }
    }
}

/// Approximate resident bytes of one graph snapshot: the CSR adjacency
/// is two directed arcs per edge plus an offset per node, each a
/// machine word. A monitoring estimate, not an allocator audit.
fn approx_graph_bytes(graph: &Graph) -> u64 {
    let word = std::mem::size_of::<usize>() as u64;
    (2 * graph.edge_count() as u64 + graph.node_count() as u64 + 1) * word
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_analysis::GraphSpec;
    use af_core::api::FloodRequest;
    use af_graph::generators;

    fn registry_with(name: &str, spec: GraphSpec) -> Registry {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Gen {
            name: name.into(),
            spec,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        registry
    }

    #[test]
    fn load_accepts_both_text_formats() {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Load {
            name: "el".into(),
            graph: af_graph::io::to_edge_list(&generators::petersen()),
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "el".into(),
                nodes: 10,
                edges: 15,
            }
        );
        let resp = registry.execute(&Request::Load {
            name: "g6".into(),
            graph: "Bw".into(), // graph6 C_3
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "g6".into(),
                nodes: 3,
                edges: 3,
            }
        );
    }

    #[test]
    fn unknown_graph_and_bad_graph_are_stable_codes() {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Predict {
            graph: "ghost".into(),
            source_sets: vec![vec![0]],
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::UNKNOWN_GRAPH);

        let resp = registry.execute(&Request::Load {
            name: "bad".into(),
            graph: "n 2\n0 7\n".into(),
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::BAD_GRAPH);

        let stats = registry.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 2);
        assert!(stats.graphs.is_empty());
    }

    #[test]
    fn predict_matches_the_free_oracle_and_caches_the_index() {
        let registry = registry_with("g", GraphSpec::Grid { rows: 4, cols: 5 });
        let g = GraphSpec::Grid { rows: 4, cols: 5 }.build();
        let sets = vec![vec![0], vec![3, 17], vec![0, 1, 2]];
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: sets.clone(),
        });
        let Response::Predicted { predictions } = resp else {
            panic!("expected predictions, got {resp:?}");
        };
        for (set, summary) in sets.iter().zip(&predictions) {
            let free = af_core::theory::predict(&g, set.iter().copied().map(NodeId::new));
            assert_eq!(summary.termination_round, free.termination_round());
            assert_eq!(summary.total_messages, free.total_messages());
        }
        let stats = registry.stats();
        assert!(stats.graphs[0].indexed, "index caches after first predict");
    }

    #[test]
    fn predict_rejects_out_of_range_sources_without_panicking() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 5 });
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0], vec![5]],
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::BAD_SOURCE);
        assert!(err.message.contains("set 1"), "{err}");
    }

    #[test]
    fn flood_is_sugar_for_a_one_set_batch() {
        let registry = registry_with("g", GraphSpec::Petersen);
        let flood = registry.execute(&Request::Flood {
            graph: "g".into(),
            sources: vec![0],
            engine: "bitlane".into(),
            max_rounds: 0,
        });
        let batch = registry.execute(&Request::Batch {
            graph: "g".into(),
            request: FloodRequest {
                source_sets: vec![vec![0]],
                engine: "bitlane".into(),
                max_rounds: 0,
            },
        });
        assert_eq!(flood, batch);
        let Response::Flooded(resp) = flood else {
            panic!("expected flood response, got {flood:?}");
        };
        assert_eq!(resp.engine, "bitlane");
        assert!(resp.floods[0].terminated);
    }

    #[test]
    fn mutate_updates_topology_and_invalidates_the_index() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 4 });
        let before = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert!(registry.stats().graphs[0].indexed);

        // Delete one cycle edge: C_4 becomes P_4, eccentricity grows.
        let resp = registry.execute(&Request::Mutate {
            graph: "g".into(),
            deltas: vec![GraphDelta {
                delete_edges: vec![(0, 3)],
                ..GraphDelta::default()
            }],
        });
        assert_eq!(
            resp,
            Response::Mutated {
                name: "g".into(),
                nodes: 4,
                edges: 3,
                edits_applied: 1,
                edits_skipped: 0,
            }
        );
        let stats = registry.stats();
        assert!(!stats.graphs[0].indexed, "mutation drops the index");
        assert_eq!(stats.graphs[0].mutations, 1);

        let after = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert_ne!(before, after, "prediction reflects the new topology");
        let expected = af_core::theory::predict(&generators::path(4), [NodeId::new(0)]);
        let Response::Predicted { predictions } = after else {
            panic!("expected predictions, got {after:?}");
        };
        assert_eq!(
            predictions[0].termination_round,
            expected.termination_round()
        );
    }

    #[test]
    fn mutate_counts_skipped_edits() {
        let registry = registry_with("g", GraphSpec::Path { n: 3 });
        let resp = registry.execute(&Request::Mutate {
            graph: "g".into(),
            deltas: vec![GraphDelta {
                delete_edges: vec![(0, 2)],         // not an edge of P_3
                insert_edges: vec![(0, 2), (1, 1)], // second is a self-loop
                ..GraphDelta::default()
            }],
        });
        assert_eq!(
            resp,
            Response::Mutated {
                name: "g".into(),
                nodes: 3,
                edges: 3,
                edits_applied: 1,
                edits_skipped: 2,
            }
        );
    }

    #[test]
    fn metrics_verb_reports_per_verb_counts_and_gauges() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 6 });
        for _ in 0..2 {
            let resp = registry.execute(&Request::Predict {
                graph: "g".into(),
                source_sets: vec![vec![0]],
            });
            assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");
        }
        let resp = registry.execute(&Request::Predict {
            graph: "ghost".into(),
            source_sets: vec![vec![0]],
        });
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");

        let resp = registry.execute(&Request::Metrics);
        let Response::Metrics(report) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        // Gen + 3 Predicts + this Metrics.
        assert_eq!(report.requests_total, 5);
        assert_eq!(report.errors_total, 1);
        assert_eq!(report.predict_indexes, 1, "the predicts built g's index");
        assert!(report.registry_bytes > 0);
        let count = |name: &str| report.verbs.iter().find(|v| v.verb == name).unwrap().count;
        assert_eq!(count("Gen"), 1);
        assert_eq!(count("Predict"), 3, "the failed predict still counts");
        assert_eq!(count("Flood"), 0);
        // The report is taken before its own request is observed.
        assert_eq!(count("Metrics"), 0);

        let stats = registry.stats();
        assert_eq!(stats.requests_total, stats.requests);
        let verb_sum: u64 = stats.verbs.iter().map(|v| v.count).sum();
        assert_eq!(
            verb_sum, stats.requests,
            "every parsed request has a verb row"
        );
    }

    #[test]
    fn reloading_a_name_replaces_the_graph() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 3 });
        let resp = registry.execute(&Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Complete { n: 5 },
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "g".into(),
                nodes: 5,
                edges: 10,
            }
        );
        let stats = registry.stats();
        assert_eq!(stats.graphs.len(), 1);
        assert_eq!(stats.graphs[0].edges, 10);
    }
}
