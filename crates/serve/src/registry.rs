//! The graph registry: named graphs loaded once, shared by every
//! connection, mutated in place, with a lazily built predict index per
//! graph — and, when a byte budget is configured, a least-recently-used
//! eviction policy that keeps the total charged footprint under it.
//!
//! Locking layout, coarsest to finest:
//!
//! - [`Registry`] holds the name → entry map behind a `RwLock`; request
//!   handlers take a read lock just long enough to clone the entry's
//!   `Arc`, so `Load`/`Gen` (the only writers) never block in-flight
//!   floods.
//! - Each [`GraphEntry`] keeps an `Arc<Graph>` **snapshot** behind its
//!   own `RwLock`. Floods and predictions clone the `Arc` and drop the
//!   lock before doing any work, so arbitrarily slow floods never hold a
//!   lock; `Mutate` builds the next snapshot under the entry's
//!   [`DeltaGraph`] mutex and swaps it in atomically.
//! - The per-graph [`PredictIndex`] sits behind a mutex: the double
//!   cover is built once on the first `Predict` and every later query is
//!   a zero-allocation BFS on the warm index, until a `Mutate`
//!   invalidates it. Queries on one graph serialize (the index's scratch
//!   is reused); queries on different graphs run concurrently.
//!
//! Lock-order rule for the budget machinery: a thread holding an
//! entry-level lock (`delta`, `index`) must **release it before**
//! touching the registry map — eviction walks the map under the write
//! lock and then takes victims' entry locks, so the opposite nesting
//! would be an ABBA deadlock. Handlers therefore finish their entry-level
//! work, drop the guards, and only then call `Registry::enforce_budget`.
//! The per-entry [`Charges`] mutex is the innermost leaf of the order
//! (`index` → `charges` is allowed; `charges` is never held while taking
//! any other lock).
//!
//! Byte accounting is **eager and transactional**: every snapshot and
//! index charges its approximate footprint
//! ([`approx_graph_bytes`]/[`approx_index_bytes`]) into the shared
//! [`ServeMetrics`] gauge when it is created and releases it when it is
//! dropped, so a `Metrics` report is a pure read. Each entry's charges
//! and its `dead` flag live in one [`Charges`] ledger behind one mutex,
//! so every charge/release pair is observed atomically: an entry evicted
//! while another thread still holds its `Arc` is flagged dead under the
//! lock, and whichever side charges afterwards (the in-flight index
//! build, the mutate recharge) sees the flag in the same critical
//! section and takes its own charge back — every interleaving is a total
//! order, and the gauge balances.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use af_core::api::{code, ErrorResponse};
use af_core::theory::{PredictIndex, PredictSummary};
use af_graph::dynamic::{DeltaGraph, GraphDelta};
use af_graph::{Graph, NodeId};
use parking_lot::{Mutex, RwLock};

use crate::metrics::{ServeMetrics, Verb};
use crate::protocol::{GraphInfo, MetricsReport, Request, Response, ServerStats};

/// One registered graph and its cached derived state.
#[derive(Debug)]
pub struct GraphEntry {
    /// The evolving topology; `Mutate` applies batches under this lock.
    delta: Mutex<DeltaGraph>,
    /// Immutable snapshot of the current topology, swapped after each
    /// mutation. Readers clone the `Arc` and work lock-free.
    snapshot: RwLock<Arc<Graph>>,
    /// Lazily built double-cover oracle over the current snapshot;
    /// `None` until the first `Predict` and again after every `Mutate`.
    index: Mutex<Option<PredictIndex>>,
    /// `Mutate` batches applied over this graph's lifetime.
    mutations: AtomicU64,
    /// LRU timestamp: the registry clock value of the last touch.
    last_used: AtomicU64,
    /// Budget ledger for this entry — see [`Charges`].
    charges: Mutex<Charges>,
}

/// One entry's budget-accounting ledger. A single mutex guards both
/// charges and the `dead` flag, so "am I still resident?" and "what do
/// I owe?" are always answered together — the guarantee the previous
/// lock-free version needed `SeqCst` store-load fences for. The mutex
/// is the innermost leaf of the lock order: held for a few word-sized
/// reads and writes, never while acquiring any other lock.
#[derive(Debug, Default)]
struct Charges {
    /// Bytes currently charged for the snapshot (0 after release).
    graph: u64,
    /// Bytes currently charged for the predict index (0 when unbuilt or
    /// released).
    index: u64,
    /// Set when the entry leaves the map (eviction or replacement);
    /// in-flight work observes it and takes its own charge back.
    dead: bool,
}

impl GraphEntry {
    fn new(graph: Graph) -> Self {
        GraphEntry {
            delta: Mutex::new(DeltaGraph::new(&graph)),
            snapshot: RwLock::new(Arc::new(graph)),
            index: Mutex::new(None),
            mutations: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            charges: Mutex::new(Charges::default()),
        }
    }

    /// The current topology as a cheap shared handle.
    pub fn snapshot(&self) -> Arc<Graph> {
        Arc::clone(&self.snapshot.read())
    }
}

/// The daemon's shared state: the graph map plus request counters.
///
/// Every verb funnels through [`Registry::execute`], which returns the
/// wire [`Response`] and keeps the counters honest (errors included).
/// The registry is transport-agnostic — the TCP server, the stdio
/// server, and the in-process tests all drive the same object.
#[derive(Debug, Default)]
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    /// Byte budget for snapshots + indexes; 0 = unbounded.
    budget: u64,
    /// Monotonic LRU clock; every touch takes the next tick.
    clock: AtomicU64,
    /// Names that were registered and then evicted (cleared by
    /// re-registration) — they answer [`code::NOT_FOUND`] instead of
    /// [`code::UNKNOWN_GRAPH`].
    evicted: Mutex<BTreeSet<String>>,
    requests: AtomicU64,
    errors: AtomicU64,
    metrics: ServeMetrics,
}

impl Registry {
    /// An empty, unbounded registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_budget(0)
    }

    /// An empty registry with a byte budget for graph snapshots plus
    /// predict indexes (`0` = unbounded). When an admission would push
    /// the charged total over the budget, least-recently-used graphs
    /// are evicted until it fits; a single graph (or graph + its own
    /// index) larger than the whole budget is rejected with
    /// [`code::OVER_BUDGET`].
    #[must_use]
    pub fn with_budget(budget: u64) -> Self {
        let registry = Registry {
            budget,
            ..Registry::default()
        };
        registry.metrics.set_registry_budget(budget);
        registry
    }

    /// The configured byte budget (0 = unbounded).
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Executes one request and returns its response, counting both.
    ///
    /// [`Request::Shutdown`] is answered with
    /// [`Response::ShuttingDown`]; actually stopping the transport is
    /// the server's job (the registry has no connections to close).
    pub fn execute(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let verb = Verb::of(request);
        let started = Instant::now();
        let result = match request {
            // af-audit: allow(explicit-atomic-ordering): Registry::load is not an atomic
            Request::Load { name, graph } => self.load(name, graph),
            Request::Gen { name, spec } => self.register(name, spec.build()),
            Request::Predict { graph, source_sets } => self.predict(graph, source_sets),
            Request::Flood {
                graph,
                sources,
                engine,
                max_rounds,
            } => {
                let request = af_core::api::FloodRequest {
                    source_sets: vec![sources.clone()],
                    engine: engine.clone(),
                    max_rounds: *max_rounds,
                };
                self.batch(graph, &request)
            }
            Request::Batch { graph, request } => self.batch(graph, request),
            Request::Bench {
                graph,
                request,
                repeat,
            } => self.bench(graph, request, *repeat),
            Request::Mutate { graph, deltas } => self.mutate(graph, deltas),
            Request::Evict { graph } => self.evict(graph),
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Metrics => Ok(Response::Metrics(self.metrics_report())),
            Request::Shutdown => Ok(Response::ShuttingDown),
        };
        let response = result.unwrap_or_else(|e| self.reject(e));
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.observe(verb, micros);
        response
    }

    /// Wraps a failure as a [`Response::Error`], counting it — also used
    /// by the server for failures that never reach a handler (unparsable
    /// or oversized lines, requests after shutdown began).
    pub fn reject(&self, error: ErrorResponse) -> Response {
        self.errors.fetch_add(1, Ordering::Relaxed);
        Response::Error(error)
    }

    /// Counts a request the server answered without a handler —
    /// unparsable or oversized lines, refusals during shutdown (the
    /// caller pairs this with [`Self::reject`]). These land on the
    /// `Rejected` verb row, so `requests_total` stays equal to the sum
    /// of the per-verb counts no matter what a client throws at us.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.observe(Verb::Rejected, 0);
    }

    /// The daemon's metric block — the transports record connection and
    /// byte counts here; [`Self::execute`] records verbs and latency.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The full metrics snapshot behind the `Metrics` verb and the
    /// final stderr flush. A pure read: the footprint gauges are
    /// maintained eagerly by every register / index build / mutate /
    /// evict, so nothing walks the registry here.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report(
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// Looks up a registered graph's entry.
    ///
    /// # Errors
    ///
    /// [`code::NOT_FOUND`] if the name was registered but has been
    /// evicted since; [`code::UNKNOWN_GRAPH`] if it never was.
    pub fn entry(&self, name: &str) -> Result<Arc<GraphEntry>, ErrorResponse> {
        if let Some(entry) = self.graphs.read().get(name) {
            return Ok(Arc::clone(entry));
        }
        Err(self.missing_error(name))
    }

    /// The error for a name that is not in the map right now:
    /// [`code::NOT_FOUND`] if it was registered and evicted since,
    /// [`code::UNKNOWN_GRAPH`] if it never was.
    fn missing_error(&self, name: &str) -> ErrorResponse {
        if self.evicted.lock().contains(name) {
            ErrorResponse::new(
                code::NOT_FOUND,
                format!("graph '{name}' was evicted; re-Load or re-Gen it"),
            )
        } else {
            ErrorResponse::new(code::UNKNOWN_GRAPH, format!("no graph named '{name}'"))
        }
    }

    /// Marks an entry as just-used for LRU ordering.
    fn touch(&self, entry: &GraphEntry) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
    }

    /// Registers a graph parsed from text — the boot path behind
    /// `--registry-dir`. Identical to a `Load` request except that it
    /// does **not** count as a wire request (boot loads would otherwise
    /// skew `requests_total` against the per-verb counts).
    ///
    /// # Errors
    ///
    /// [`code::BAD_GRAPH`] if the text parses as neither edge list nor
    /// graph6; [`code::OVER_BUDGET`] if the graph alone exceeds the
    /// registry budget.
    pub fn register_from_text(&self, name: &str, text: &str) -> Result<Response, ErrorResponse> {
        // af-audit: allow(explicit-atomic-ordering): Registry::load is not an atomic
        self.load(name, text)
    }

    fn load(&self, name: &str, text: &str) -> Result<Response, ErrorResponse> {
        let graph = af_graph::io::from_text(text)
            .map_err(|e| ErrorResponse::new(code::BAD_GRAPH, format!("{e}")))?;
        self.register(name, graph)
    }

    fn register(&self, name: &str, graph: Graph) -> Result<Response, ErrorResponse> {
        let bytes = approx_graph_bytes(&graph);
        if self.budget > 0 && bytes > self.budget {
            return Err(ErrorResponse::new(
                code::OVER_BUDGET,
                format!(
                    "graph '{name}' needs ~{bytes} bytes, over the {}-byte registry budget",
                    self.budget
                ),
            ));
        }
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let entry = Arc::new(GraphEntry::new(graph));
        entry.charges.lock().graph = bytes;
        self.metrics.charge_registry(bytes);
        self.touch(&entry);
        let replaced = self.graphs.write().insert(name.to_owned(), entry);
        if let Some(old) = replaced {
            // Same-name replacement releases the old charge but is not
            // an eviction: the name stays resident.
            self.release_entry(&old);
        }
        self.evicted.lock().remove(name);
        self.enforce_budget(name);
        Ok(Response::Registered {
            name: name.to_owned(),
            nodes,
            edges,
        })
    }

    /// Flags `entry` dead and takes back its outstanding charges in one
    /// critical section, then drops its index. In-flight work that
    /// charges after this observes the flag under the same lock and
    /// takes its own charge back, so each charge is released exactly
    /// once. (The charges lock is released before taking the index
    /// lock — the ledger is the innermost leaf of the lock order.)
    fn release_entry(&self, entry: &GraphEntry) -> (u64, bool) {
        let (graph_bytes, index_bytes) = {
            let mut charges = entry.charges.lock();
            charges.dead = true;
            (
                std::mem::take(&mut charges.graph),
                std::mem::take(&mut charges.index),
            )
        };
        let index_dropped = entry.index.lock().take().is_some();
        if index_bytes > 0 {
            self.metrics.index_dropped();
        }
        self.metrics.uncharge_registry(graph_bytes + index_bytes);
        (graph_bytes + index_bytes, index_dropped)
    }

    /// Evicts least-recently-used graphs (never `keep`) until the
    /// charged footprint fits the budget. No-op when unbounded.
    fn enforce_budget(&self, keep: &str) {
        if self.budget == 0 {
            return;
        }
        let mut graphs = self.graphs.write();
        while self.metrics.registry_bytes() > self.budget {
            let victim = graphs
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone());
            let Some(name) = victim else {
                // Only `keep` is left; Mutate may legitimately leave it
                // over budget (the documented escape hatch).
                break;
            };
            let Some(entry) = graphs.remove(&name) else {
                // Unreachable — the victim name came from this very map
                // under the same write lock — but breaking beats both a
                // panic and a spin.
                break;
            };
            self.release_entry(&entry);
            self.metrics.eviction();
            self.evicted.lock().insert(name);
        }
    }

    fn evict(&self, name: &str) -> Result<Response, ErrorResponse> {
        let removed = self.graphs.write().remove(name);
        let Some(entry) = removed else {
            // Same error split as entry(): evicted-before vs never.
            return Err(self.missing_error(name));
        };
        let (bytes_freed, index_dropped) = self.release_entry(&entry);
        self.metrics.eviction();
        self.evicted.lock().insert(name.to_owned());
        Ok(Response::Evicted {
            name: name.to_owned(),
            bytes_freed,
            index_dropped,
        })
    }

    fn predict(&self, name: &str, source_sets: &[Vec<usize>]) -> Result<Response, ErrorResponse> {
        let entry = self.entry(name)?;
        self.touch(&entry);
        let snapshot = entry.snapshot();
        // The oracle itself panics on out-of-range ids, so validate
        // against the snapshot first — a malformed request must come
        // back as an error, not kill the connection.
        let n = snapshot.node_count();
        for (i, set) in source_sets.iter().enumerate() {
            if let Some(&v) = set.iter().find(|&&v| v >= n) {
                return Err(ErrorResponse::new(
                    code::BAD_SOURCE,
                    format!("source {v} in set {i} out of range for {n} nodes"),
                ));
            }
        }
        let predictions = {
            let mut guard = entry.index.lock();
            if guard.is_none() {
                let cost = approx_index_bytes(&snapshot);
                let own = entry.charges.lock().graph;
                if self.budget > 0 && own + cost > self.budget {
                    return Err(ErrorResponse::new(
                        code::OVER_BUDGET,
                        format!(
                            "graph '{name}' plus its predict index needs ~{} bytes, \
                             over the {}-byte registry budget",
                            own + cost,
                            self.budget
                        ),
                    ));
                }
                *guard = Some(PredictIndex::new(&snapshot));
                entry.charges.lock().index = cost;
                self.metrics.charge_registry(cost);
                self.metrics.index_built();
            }
            // Ensured `Some` just above, so the closure never runs —
            // it only keeps this lookup panic-free.
            let index = guard.get_or_insert_with(|| PredictIndex::new(&snapshot));
            let predictions: Vec<PredictSummary> = source_sets
                .iter()
                .map(|set| index.summary(set.iter().copied().map(NodeId::new)))
                .collect();
            // The entry may have been evicted while we were building;
            // take our charge back (and the now-orphaned index with it)
            // so the gauge balances. The answer itself is still valid —
            // it was computed on a consistent snapshot.
            let mut charges = entry.charges.lock();
            if charges.dead {
                let charged = std::mem::take(&mut charges.index);
                drop(charges);
                if charged > 0 {
                    self.metrics.uncharge_registry(charged);
                    self.metrics.index_dropped();
                }
                *guard = None;
            }
            predictions
        };
        // Entry locks are released; now it is safe to take the map lock.
        self.enforce_budget(name);
        Ok(Response::Predicted { predictions })
    }

    fn batch(
        &self,
        name: &str,
        request: &af_core::api::FloodRequest,
    ) -> Result<Response, ErrorResponse> {
        let entry = self.entry(name)?;
        self.touch(&entry);
        let snapshot = entry.snapshot();
        request.execute(&snapshot).map(Response::Flooded)
    }

    fn bench(
        &self,
        name: &str,
        request: &af_core::api::FloodRequest,
        repeat: u32,
    ) -> Result<Response, ErrorResponse> {
        if repeat == 0 {
            return Err(ErrorResponse::new(
                code::BAD_REQUEST,
                "bench repeat must be at least 1",
            ));
        }
        let entry = self.entry(name)?;
        self.touch(&entry);
        let snapshot = entry.snapshot();
        let mut runs = Vec::with_capacity(repeat as usize);
        for _ in 0..repeat {
            runs.push(af_analysis::bench::measure_request(&snapshot, request)?);
        }
        Ok(Response::Benched {
            graph: name.to_owned(),
            nodes: snapshot.node_count(),
            edges: snapshot.edge_count(),
            runs,
        })
    }

    fn mutate(&self, name: &str, deltas: &[GraphDelta]) -> Result<Response, ErrorResponse> {
        let entry = self.entry(name)?;
        self.touch(&entry);
        let (nodes, edges, edits_applied, edits_skipped) = {
            let mut delta = entry.delta.lock();
            let mut edits_applied = 0;
            let mut edits_skipped = 0;
            for batch in deltas {
                let applied = delta.apply(batch);
                edits_applied += applied.edges_deleted
                    + applied.edges_inserted
                    + applied.nodes_left
                    + applied.nodes_joined;
                edits_skipped += applied.edits_skipped;
            }
            entry
                .mutations
                .fetch_add(deltas.len() as u64, Ordering::Relaxed);
            // Publish the new topology and drop the stale oracle while
            // still holding the delta lock, so a racing Predict can never
            // cache an index over the old snapshot after the swap.
            let nodes = delta.node_count();
            let edges = delta.edge_count();
            let new_snapshot = Arc::new(delta.graph().clone());
            let new_bytes = approx_graph_bytes(&new_snapshot);
            *entry.snapshot.write() = new_snapshot;
            {
                let mut guard = entry.index.lock();
                if guard.take().is_some() {
                    self.metrics.index_dropped();
                }
                let stale = std::mem::take(&mut entry.charges.lock().index);
                self.metrics.uncharge_registry(stale);
            }
            // Recharge the snapshot at its new size. Mutate never
            // rejects on budget (clients grow graphs in place); if the
            // result alone exceeds the budget it stays resident as the
            // documented escape hatch — everything else gets evicted.
            // One critical section decides old charge, new charge, and
            // the eviction race: a dead entry simply stays uncharged.
            let (old, recharged) = {
                let mut charges = entry.charges.lock();
                let old = std::mem::take(&mut charges.graph);
                if charges.dead {
                    (old, 0)
                } else {
                    charges.graph = new_bytes;
                    (old, new_bytes)
                }
            };
            self.metrics.uncharge_registry(old);
            if recharged > 0 {
                self.metrics.charge_registry(recharged);
            }
            (nodes, edges, edits_applied, edits_skipped)
        };
        // Entry locks are released; now it is safe to take the map lock.
        self.enforce_budget(name);
        Ok(Response::Mutated {
            name: name.to_owned(),
            nodes,
            edges,
            edits_applied,
            edits_skipped,
        })
    }

    fn stats(&self) -> ServerStats {
        // Clone the entries out under the read lock, then inspect them
        // unlocked: taking entry locks while holding the map lock is the
        // evictor's nesting order, and holding the map lock through
        // per-entry mutex waits would stall every other request.
        let entries: Vec<(String, Arc<GraphEntry>)> = self
            .graphs
            .read()
            .iter()
            .map(|(name, entry)| (name.clone(), Arc::clone(entry)))
            .collect();
        let graphs = entries
            .into_iter()
            .map(|(name, entry)| {
                let snapshot = entry.snapshot();
                GraphInfo {
                    name,
                    nodes: snapshot.node_count(),
                    edges: snapshot.edge_count(),
                    indexed: entry.index.lock().is_some(),
                    mutations: entry.mutations.load(Ordering::Relaxed),
                }
            })
            .collect();
        let requests = self.requests.load(Ordering::Relaxed);
        ServerStats {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            uptime_secs: self.metrics.uptime_secs(),
            requests_total: requests,
            verbs: self.metrics.verb_counts(),
            graphs,
        }
    }
}

/// Approximate resident bytes of one graph snapshot: the CSR adjacency
/// is two directed arcs per edge plus an offset per node, each a
/// machine word. A monitoring estimate, not an allocator audit — but a
/// *deterministic* one, so tests can recompute the budget charge.
#[must_use]
pub fn approx_graph_bytes(graph: &Graph) -> u64 {
    let word = std::mem::size_of::<usize>() as u64;
    (2 * graph.edge_count() as u64 + graph.node_count() as u64 + 1) * word
}

/// Approximate resident bytes of one graph's predict index: the double
/// cover is itself a CSR graph over `2n` nodes and `2m` edges, plus two
/// `u32` scratch arrays (`dist`, `mark`) over the cover's nodes.
#[must_use]
pub fn approx_index_bytes(graph: &Graph) -> u64 {
    let word = std::mem::size_of::<usize>() as u64;
    let n = graph.node_count() as u64;
    let m = graph.edge_count() as u64;
    (4 * m + 2 * n + 1) * word + 16 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_analysis::GraphSpec;
    use af_core::api::FloodRequest;
    use af_graph::generators;

    fn registry_with(name: &str, spec: GraphSpec) -> Registry {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Gen {
            name: name.into(),
            spec,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        registry
    }

    #[test]
    fn load_accepts_both_text_formats() {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Load {
            name: "el".into(),
            graph: af_graph::io::to_edge_list(&generators::petersen()),
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "el".into(),
                nodes: 10,
                edges: 15,
            }
        );
        let resp = registry.execute(&Request::Load {
            name: "g6".into(),
            graph: "Bw".into(), // graph6 C_3
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "g6".into(),
                nodes: 3,
                edges: 3,
            }
        );
    }

    #[test]
    fn unknown_graph_and_bad_graph_are_stable_codes() {
        let registry = Registry::new();
        let resp = registry.execute(&Request::Predict {
            graph: "ghost".into(),
            source_sets: vec![vec![0]],
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::UNKNOWN_GRAPH);

        let resp = registry.execute(&Request::Load {
            name: "bad".into(),
            graph: "n 2\n0 7\n".into(),
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::BAD_GRAPH);

        let stats = registry.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 2);
        assert!(stats.graphs.is_empty());
    }

    #[test]
    fn predict_matches_the_free_oracle_and_caches_the_index() {
        let registry = registry_with("g", GraphSpec::Grid { rows: 4, cols: 5 });
        let g = GraphSpec::Grid { rows: 4, cols: 5 }.build();
        let sets = vec![vec![0], vec![3, 17], vec![0, 1, 2]];
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: sets.clone(),
        });
        let Response::Predicted { predictions } = resp else {
            panic!("expected predictions, got {resp:?}");
        };
        for (set, summary) in sets.iter().zip(&predictions) {
            let free = af_core::theory::predict(&g, set.iter().copied().map(NodeId::new));
            assert_eq!(summary.termination_round, free.termination_round());
            assert_eq!(summary.total_messages, free.total_messages());
        }
        let stats = registry.stats();
        assert!(stats.graphs[0].indexed, "index caches after first predict");
    }

    #[test]
    fn predict_rejects_out_of_range_sources_without_panicking() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 5 });
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0], vec![5]],
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::BAD_SOURCE);
        assert!(err.message.contains("set 1"), "{err}");
    }

    #[test]
    fn flood_is_sugar_for_a_one_set_batch() {
        let registry = registry_with("g", GraphSpec::Petersen);
        let flood = registry.execute(&Request::Flood {
            graph: "g".into(),
            sources: vec![0],
            engine: "bitlane".into(),
            max_rounds: 0,
        });
        let batch = registry.execute(&Request::Batch {
            graph: "g".into(),
            request: FloodRequest {
                source_sets: vec![vec![0]],
                engine: "bitlane".into(),
                max_rounds: 0,
            },
        });
        assert_eq!(flood, batch);
        let Response::Flooded(resp) = flood else {
            panic!("expected flood response, got {flood:?}");
        };
        assert_eq!(resp.engine, "bitlane");
        assert!(resp.floods[0].terminated);
    }

    #[test]
    fn mutate_updates_topology_and_invalidates_the_index() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 4 });
        let before = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert!(registry.stats().graphs[0].indexed);

        // Delete one cycle edge: C_4 becomes P_4, eccentricity grows.
        let resp = registry.execute(&Request::Mutate {
            graph: "g".into(),
            deltas: vec![GraphDelta {
                delete_edges: vec![(0, 3)],
                ..GraphDelta::default()
            }],
        });
        assert_eq!(
            resp,
            Response::Mutated {
                name: "g".into(),
                nodes: 4,
                edges: 3,
                edits_applied: 1,
                edits_skipped: 0,
            }
        );
        let stats = registry.stats();
        assert!(!stats.graphs[0].indexed, "mutation drops the index");
        assert_eq!(stats.graphs[0].mutations, 1);

        let after = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert_ne!(before, after, "prediction reflects the new topology");
        let expected = af_core::theory::predict(&generators::path(4), [NodeId::new(0)]);
        let Response::Predicted { predictions } = after else {
            panic!("expected predictions, got {after:?}");
        };
        assert_eq!(
            predictions[0].termination_round,
            expected.termination_round()
        );
    }

    #[test]
    fn mutate_counts_skipped_edits() {
        let registry = registry_with("g", GraphSpec::Path { n: 3 });
        let resp = registry.execute(&Request::Mutate {
            graph: "g".into(),
            deltas: vec![GraphDelta {
                delete_edges: vec![(0, 2)],         // not an edge of P_3
                insert_edges: vec![(0, 2), (1, 1)], // second is a self-loop
                ..GraphDelta::default()
            }],
        });
        assert_eq!(
            resp,
            Response::Mutated {
                name: "g".into(),
                nodes: 3,
                edges: 3,
                edits_applied: 1,
                edits_skipped: 2,
            }
        );
    }

    #[test]
    fn metrics_verb_reports_per_verb_counts_and_gauges() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 6 });
        for _ in 0..2 {
            let resp = registry.execute(&Request::Predict {
                graph: "g".into(),
                source_sets: vec![vec![0]],
            });
            assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");
        }
        let resp = registry.execute(&Request::Predict {
            graph: "ghost".into(),
            source_sets: vec![vec![0]],
        });
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");

        let resp = registry.execute(&Request::Metrics);
        let Response::Metrics(report) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        // Gen + 3 Predicts + this Metrics.
        assert_eq!(report.requests_total, 5);
        assert_eq!(report.errors_total, 1);
        assert_eq!(report.predict_indexes, 1, "the predicts built g's index");
        // Eager accounting: the gauge carries exactly the graph charge
        // plus the index charge, no report-time recompute involved.
        let g = GraphSpec::Cycle { n: 6 }.build();
        assert_eq!(
            report.registry_bytes,
            approx_graph_bytes(&g) + approx_index_bytes(&g)
        );
        assert_eq!(report.registry_budget_bytes, 0, "unbounded by default");
        assert_eq!(report.evictions_total, 0);
        let count = |name: &str| report.verbs.iter().find(|v| v.verb == name).unwrap().count;
        assert_eq!(count("Gen"), 1);
        assert_eq!(count("Predict"), 3, "the failed predict still counts");
        assert_eq!(count("Flood"), 0);
        // The report is taken before its own request is observed.
        assert_eq!(count("Metrics"), 0);

        let stats = registry.stats();
        assert_eq!(stats.requests_total, stats.requests);
        let verb_sum: u64 = stats.verbs.iter().map(|v| v.count).sum();
        assert_eq!(
            verb_sum, stats.requests,
            "every parsed request has a verb row"
        );
    }

    #[test]
    fn reloading_a_name_replaces_the_graph() {
        let registry = registry_with("g", GraphSpec::Cycle { n: 3 });
        let resp = registry.execute(&Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Complete { n: 5 },
        });
        assert_eq!(
            resp,
            Response::Registered {
                name: "g".into(),
                nodes: 5,
                edges: 10,
            }
        );
        let stats = registry.stats();
        assert_eq!(stats.graphs.len(), 1);
        assert_eq!(stats.graphs[0].edges, 10);
        // The replaced graph's charge was released, the new one charged.
        let k5 = GraphSpec::Complete { n: 5 }.build();
        assert_eq!(registry.metrics().registry_bytes(), approx_graph_bytes(&k5));
    }

    #[test]
    fn evict_frees_the_charge_and_answers_not_found_after() {
        let registry = registry_with("g", GraphSpec::Grid { rows: 3, cols: 3 });
        let g = GraphSpec::Grid { rows: 3, cols: 3 }.build();
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");

        let resp = registry.execute(&Request::Evict { graph: "g".into() });
        assert_eq!(
            resp,
            Response::Evicted {
                name: "g".into(),
                bytes_freed: approx_graph_bytes(&g) + approx_index_bytes(&g),
                index_dropped: true,
            }
        );
        assert_eq!(registry.metrics().registry_bytes(), 0);
        assert_eq!(registry.metrics().evictions_total(), 1);
        let report = registry.metrics_report();
        assert_eq!(report.predict_indexes, 0, "the index gauge fell eagerly");

        // Evicted names are distinguishable from never-registered ones.
        let resp = registry.execute(&Request::Flood {
            graph: "g".into(),
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::NOT_FOUND);
        let resp = registry.execute(&Request::Evict { graph: "g".into() });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::NOT_FOUND, "double evict is not_found");
        let resp = registry.execute(&Request::Evict {
            graph: "ghost".into(),
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::UNKNOWN_GRAPH);

        // Re-registering clears the tombstone and serves again.
        let resp = registry.execute(&Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Grid { rows: 3, cols: 3 },
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let resp = registry.execute(&Request::Predict {
            graph: "g".into(),
            source_sets: vec![vec![0]],
        });
        assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");
    }

    #[test]
    fn budget_evicts_least_recently_used_graphs() {
        let spec = GraphSpec::Cycle { n: 50 };
        let one = approx_graph_bytes(&spec.build());
        // Room for two cycles but not three.
        let registry = Registry::with_budget(2 * one + one / 2);
        for name in ["a", "b", "c"] {
            let resp = registry.execute(&Request::Gen {
                name: name.into(),
                spec: spec.clone(),
            });
            assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        }
        // "a" was least recently used; it fell out.
        let names: Vec<String> = registry
            .stats()
            .graphs
            .iter()
            .map(|g| g.name.clone())
            .collect();
        assert_eq!(names, ["b", "c"]);
        assert!(registry.metrics().registry_bytes() <= registry.budget());
        assert_eq!(registry.metrics().evictions_total(), 1);

        // Touching "b" (a flood) makes "c" the next victim.
        let resp = registry.execute(&Request::Flood {
            graph: "b".into(),
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        });
        assert!(matches!(resp, Response::Flooded(_)), "{resp:?}");
        let resp = registry.execute(&Request::Gen {
            name: "d".into(),
            spec: spec.clone(),
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let names: Vec<String> = registry
            .stats()
            .graphs
            .iter()
            .map(|g| g.name.clone())
            .collect();
        assert_eq!(names, ["b", "d"], "the flood-touched graph survived");
    }

    #[test]
    fn over_budget_admissions_are_rejected_with_the_stable_code() {
        let small = approx_graph_bytes(&GraphSpec::Cycle { n: 10 }.build());
        let registry = Registry::with_budget(small);
        // A graph bigger than the whole budget is rejected outright.
        let resp = registry.execute(&Request::Gen {
            name: "big".into(),
            spec: GraphSpec::Cycle { n: 1000 },
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::OVER_BUDGET);
        assert_eq!(registry.metrics().registry_bytes(), 0);

        // A graph that fits alone but cannot fit its own index rejects
        // the Predict (the graph stays resident).
        let resp = registry.execute(&Request::Gen {
            name: "tight".into(),
            spec: GraphSpec::Cycle { n: 10 },
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let resp = registry.execute(&Request::Predict {
            graph: "tight".into(),
            source_sets: vec![vec![0]],
        });
        let Response::Error(err) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(err.code, code::OVER_BUDGET);
        assert_eq!(registry.stats().graphs.len(), 1, "the graph survived");
        assert!(!registry.stats().graphs[0].indexed);
    }

    #[test]
    fn bench_measures_real_rows_and_rejects_malformed_requests() {
        let registry = registry_with("g", GraphSpec::Grid { rows: 4, cols: 4 });
        let resp = registry.execute(&Request::Bench {
            graph: "g".into(),
            request: FloodRequest {
                source_sets: vec![vec![0], vec![5]],
                engine: "bitlane".into(),
                max_rounds: 0,
            },
            repeat: 2,
        });
        let Response::Benched {
            graph,
            nodes,
            edges,
            runs,
        } = resp
        else {
            panic!("expected Benched, got {resp:?}");
        };
        assert_eq!((graph.as_str(), nodes, edges), ("g", 16, 24));
        assert_eq!(runs.len(), 2, "one row per repeat");
        for row in &runs {
            assert_eq!(row.engine, "bitlane");
            assert_eq!(row.floods_terminated, 2);
            assert!(row.total_messages > 0);
            // Repeats measure the same floods: identical round vectors.
            assert_eq!(row.rounds_per_source, runs[0].rounds_per_source);
        }

        for (request, repeat) in [
            // repeat 0 measures nothing.
            (FloodRequest::single(vec![0]), 0),
            // A capped flood cannot produce a comparable bench row.
            (
                FloodRequest {
                    source_sets: vec![vec![0]],
                    engine: String::new(),
                    max_rounds: 3,
                },
                1,
            ),
            // An empty workload measures nothing.
            (
                FloodRequest {
                    source_sets: vec![],
                    engine: String::new(),
                    max_rounds: 0,
                },
                1,
            ),
        ] {
            let resp = registry.execute(&Request::Bench {
                graph: "g".into(),
                request,
                repeat,
            });
            let Response::Error(err) = resp else {
                panic!("expected error, got {resp:?}");
            };
            assert_eq!(err.code, code::BAD_REQUEST);
        }
    }

    #[test]
    fn register_from_text_skips_the_request_counters() {
        let registry = Registry::new();
        let text = af_graph::io::to_edge_list(&generators::petersen());
        let resp = registry.register_from_text("boot", &text).unwrap();
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let stats = registry.stats();
        assert_eq!(stats.graphs.len(), 1);
        // Boot loads are not wire requests: the counters stay at zero,
        // so requests_total keeps equalling the sum of per-verb counts.
        assert_eq!(stats.requests, 0);
        let verb_sum: u64 = stats.verbs.iter().map(|v| v.count).sum();
        assert_eq!(verb_sum, 0);
        // The footprint is still charged, though.
        assert!(registry.metrics().registry_bytes() > 0);
    }
}
