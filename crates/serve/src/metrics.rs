//! Daemon instrumentation: per-verb request counts and latency
//! histograms, connection and byte counters, and registry footprint
//! gauges — all built on the lock-free primitives in
//! [`af_core::obs::metrics`], so recording on the request path is a
//! handful of relaxed atomics and **never allocates**.
//!
//! One [`ServeMetrics`] lives inside the [`crate::Registry`] for the
//! daemon's lifetime. [`Registry::execute`](crate::Registry::execute)
//! times every request and records it under its verb; the transports add
//! connection and byte counts. A [`Request::Metrics`] turns the whole
//! block into a serializable [`MetricsReport`]
//! (PROTOCOL.md, "Metrics"), and the same report is flushed to stderr
//! as a final snapshot when the daemon drains on `Shutdown`.

use std::time::Instant;

use af_core::obs::metrics::{Counter, Gauge, Histogram};

use crate::protocol::{MetricsReport, Request, VerbCount, VerbStat};

/// Every wire verb, as an instrumentation row index — plus the
/// [`Verb::Rejected`] row for lines answered without reaching a verb
/// handler, so `requests_total` always equals the sum of the rows (the
/// balance the fault-injection battery pins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `Load` — register a graph from text.
    Load,
    /// `Gen` — register a graph from a spec.
    Gen,
    /// `Predict` — exact-time oracle queries.
    Predict,
    /// `Flood` — one flood, one source set.
    Flood,
    /// `Batch` — a full `FloodRequest`.
    Batch,
    /// `Bench` — measure a `FloodRequest` through the benchmark harness.
    Bench,
    /// `Mutate` — topology edits.
    Mutate,
    /// `Evict` — drop a graph from the registry.
    Evict,
    /// `Stats` — registry counters.
    Stats,
    /// `Metrics` — this module's report.
    Metrics,
    /// `Shutdown` — drain and stop.
    Shutdown,
    /// Any line answered without reaching a verb handler: unparsable,
    /// oversized, or refused during the shutdown drain.
    Rejected,
}

/// How many verbs there are (the instrumentation array length).
const VERBS: usize = 12;

impl Verb {
    /// Every verb, in wire-documentation order.
    pub const ALL: [Verb; VERBS] = [
        Verb::Load,
        Verb::Gen,
        Verb::Predict,
        Verb::Flood,
        Verb::Batch,
        Verb::Bench,
        Verb::Mutate,
        Verb::Evict,
        Verb::Stats,
        Verb::Metrics,
        Verb::Shutdown,
        Verb::Rejected,
    ];

    /// The verb's wire name — exactly the JSON tag on the request line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verb::Load => "Load",
            Verb::Gen => "Gen",
            Verb::Predict => "Predict",
            Verb::Flood => "Flood",
            Verb::Batch => "Batch",
            Verb::Bench => "Bench",
            Verb::Mutate => "Mutate",
            Verb::Evict => "Evict",
            Verb::Stats => "Stats",
            Verb::Metrics => "Metrics",
            Verb::Shutdown => "Shutdown",
            Verb::Rejected => "Rejected",
        }
    }

    /// Which verb a parsed request is.
    #[must_use]
    pub fn of(request: &Request) -> Verb {
        match request {
            Request::Load { .. } => Verb::Load,
            Request::Gen { .. } => Verb::Gen,
            Request::Predict { .. } => Verb::Predict,
            Request::Flood { .. } => Verb::Flood,
            Request::Batch { .. } => Verb::Batch,
            Request::Bench { .. } => Verb::Bench,
            Request::Mutate { .. } => Verb::Mutate,
            Request::Evict { .. } => Verb::Evict,
            Request::Stats => Verb::Stats,
            Request::Metrics => Verb::Metrics,
            Request::Shutdown => Verb::Shutdown,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The daemon's metric block: fixed atomics allocated once, recorded
/// from every connection thread without locks.
#[derive(Debug)]
pub struct ServeMetrics {
    /// When the daemon (registry) came up; uptime is measured from here.
    started: Instant,
    /// Requests answered, per verb.
    counts: [Counter; VERBS],
    /// Request latency in microseconds, per verb.
    latency_us: [Histogram; VERBS],
    /// Transport sessions opened (TCP connections; a stdio session
    /// counts as one).
    connections: Counter,
    /// Request-line bytes consumed, newlines included.
    bytes_read: Counter,
    /// Response-line bytes written, newlines included.
    bytes_written: Counter,
    /// Approximate resident bytes of all registered graph snapshots and
    /// cached predict indexes — the byte-budget charge, maintained
    /// *eagerly* by the registry (charged on register/index build,
    /// released on evict/mutate), never recomputed at report time.
    registry_bytes: Gauge,
    /// How many graphs currently hold a built double-cover predict
    /// index (eager, like `registry_bytes`).
    predict_indexes: Gauge,
    /// The registry byte budget; 0 = unbounded.
    registry_budget: Gauge,
    /// Graphs evicted (LRU pressure and explicit `Evict` both count).
    evictions: Counter,
    /// Worker threads in the shared pool.
    pool_workers: Gauge,
    /// Enveloped requests currently queued or executing on the pool.
    pool_depth: Gauge,
    /// Enveloped requests ever dispatched to the pool.
    pool_jobs: Counter,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh block; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        ServeMetrics {
            started: Instant::now(),
            counts: [const { Counter::new() }; VERBS],
            latency_us: std::array::from_fn(|_| Histogram::new()),
            connections: Counter::new(),
            bytes_read: Counter::new(),
            bytes_written: Counter::new(),
            registry_bytes: Gauge::new(),
            predict_indexes: Gauge::new(),
            registry_budget: Gauge::new(),
            evictions: Counter::new(),
            pool_workers: Gauge::new(),
            pool_depth: Gauge::new(),
            pool_jobs: Counter::new(),
        }
    }

    /// Whole seconds since the block was created.
    #[must_use]
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one answered request: its verb and its latency.
    pub fn observe(&self, verb: Verb, micros: u64) {
        self.counts[verb.index()].inc();
        self.latency_us[verb.index()].record(micros);
    }

    /// Requests answered under one verb so far.
    #[must_use]
    pub fn verb_count(&self, verb: Verb) -> u64 {
        self.counts[verb.index()].get()
    }

    /// Counts one opened transport session.
    pub fn connection_opened(&self) {
        self.connections.inc();
    }

    /// Counts request bytes consumed off a transport.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.add(n);
    }

    /// Counts response bytes written to a transport.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.add(n);
    }

    /// Charges `bytes` of graph/index footprint against the registry
    /// gauge — called when a snapshot is registered or an index built.
    pub fn charge_registry(&self, bytes: u64) {
        self.registry_bytes.add(bytes);
    }

    /// Releases `bytes` of footprint — called on evict and on the old
    /// snapshot of a mutate. Saturates at zero.
    pub fn uncharge_registry(&self, bytes: u64) {
        self.registry_bytes.sub(bytes);
    }

    /// Approximate resident bytes currently charged.
    #[must_use]
    pub fn registry_bytes(&self) -> u64 {
        self.registry_bytes.get()
    }

    /// Counts one predict index built.
    pub fn index_built(&self) {
        self.predict_indexes.add(1);
    }

    /// Counts one predict index dropped (mutate or eviction).
    pub fn index_dropped(&self) {
        self.predict_indexes.sub(1);
    }

    /// Records the configured byte budget (0 = unbounded) so reports
    /// carry it.
    pub fn set_registry_budget(&self, budget: u64) {
        self.registry_budget.set(budget);
    }

    /// Counts one graph evicted from the registry.
    pub fn eviction(&self) {
        self.evictions.inc();
    }

    /// Graphs evicted so far.
    #[must_use]
    pub fn evictions_total(&self) -> u64 {
        self.evictions.get()
    }

    /// Records the pool size once at transport start, so reports can
    /// tell a pool-less daemon (0) from a busy one.
    pub fn set_pool_workers(&self, workers: u64) {
        self.pool_workers.set(workers);
    }

    /// Counts one enveloped request handed to the pool (depth rises).
    pub fn job_enqueued(&self) {
        self.pool_jobs.inc();
        self.pool_depth.add(1);
    }

    /// Counts one pool job finished (depth falls).
    pub fn job_finished(&self) {
        self.pool_depth.sub(1);
    }

    /// Enveloped requests currently queued or executing on the pool.
    #[must_use]
    pub fn pool_depth(&self) -> u64 {
        self.pool_depth.get()
    }

    /// Per-verb counts in [`Verb::ALL`] order — the light rows
    /// [`crate::protocol::ServerStats`] carries.
    #[must_use]
    pub fn verb_counts(&self) -> Vec<VerbCount> {
        Verb::ALL
            .iter()
            .map(|&verb| VerbCount {
                verb: verb.name().to_owned(),
                count: self.verb_count(verb),
            })
            .collect()
    }

    /// The full point-in-time report. The registry passes in its own
    /// request/error totals (they predate this module and stay where
    /// `Stats` has always read them).
    #[must_use]
    pub fn report(&self, requests_total: u64, errors_total: u64) -> MetricsReport {
        let verbs = Verb::ALL
            .iter()
            .map(|&verb| {
                let snap = self.latency_us[verb.index()].snapshot();
                VerbStat {
                    verb: verb.name().to_owned(),
                    count: self.verb_count(verb),
                    p50_us: snap.p50,
                    p90_us: snap.p90,
                    p99_us: snap.p99,
                    max_us: snap.max,
                }
            })
            .collect();
        MetricsReport {
            uptime_secs: self.uptime_secs(),
            requests_total,
            errors_total,
            connections: self.connections.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            registry_bytes: self.registry_bytes.get(),
            predict_indexes: self.predict_indexes.get(),
            registry_budget_bytes: self.registry_budget.get(),
            evictions_total: self.evictions.get(),
            pool_workers: self.pool_workers.get(),
            pool_depth: self.pool_depth.get(),
            pool_jobs_total: self.pool_jobs.get(),
            verbs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_classify_and_name_consistently() {
        for verb in Verb::ALL {
            assert_eq!(Verb::ALL[verb.index()], verb);
        }
        assert_eq!(Verb::of(&Request::Stats), Verb::Stats);
        assert_eq!(Verb::of(&Request::Metrics), Verb::Metrics);
        assert_eq!(Verb::of(&Request::Shutdown), Verb::Shutdown);
        assert_eq!(
            Verb::of(&Request::Load {
                name: "g".into(),
                graph: String::new(),
            }),
            Verb::Load
        );
    }

    #[test]
    fn observations_land_in_the_right_rows() {
        let metrics = ServeMetrics::new();
        metrics.observe(Verb::Predict, 120);
        metrics.observe(Verb::Predict, 80);
        metrics.observe(Verb::Flood, 3000);
        assert_eq!(metrics.verb_count(Verb::Predict), 2);
        assert_eq!(metrics.verb_count(Verb::Flood), 1);
        assert_eq!(metrics.verb_count(Verb::Stats), 0);

        let report = metrics.report(3, 0);
        assert_eq!(report.requests_total, 3);
        let predict = report.verbs.iter().find(|v| v.verb == "Predict").unwrap();
        assert_eq!(predict.count, 2);
        assert!(predict.max_us >= 120);
        let flood = report.verbs.iter().find(|v| v.verb == "Flood").unwrap();
        assert!(flood.p99_us >= 3000, "log bucket upper bound");
    }

    #[test]
    fn transport_counters_accumulate() {
        let metrics = ServeMetrics::new();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.add_bytes_read(100);
        metrics.add_bytes_written(40);
        metrics.add_bytes_written(2);
        metrics.charge_registry(4096);
        metrics.charge_registry(1024);
        metrics.uncharge_registry(1024);
        metrics.index_built();
        metrics.index_built();
        metrics.index_built();
        metrics.index_dropped();
        let report = metrics.report(0, 0);
        assert_eq!(report.connections, 2);
        assert_eq!(report.bytes_read, 100);
        assert_eq!(report.bytes_written, 42);
        assert_eq!(report.registry_bytes, 4096);
        assert_eq!(report.predict_indexes, 2);
    }

    #[test]
    fn pool_and_eviction_instrumentation_balances() {
        let metrics = ServeMetrics::new();
        metrics.set_pool_workers(4);
        metrics.set_registry_budget(1 << 20);
        metrics.job_enqueued();
        metrics.job_enqueued();
        metrics.job_enqueued();
        assert_eq!(metrics.pool_depth(), 3);
        metrics.job_finished();
        metrics.eviction();
        let report = metrics.report(0, 0);
        assert_eq!(report.pool_workers, 4);
        assert_eq!(report.registry_budget_bytes, 1 << 20);
        assert_eq!(report.pool_jobs_total, 3);
        assert_eq!(report.pool_depth, 2);
        assert_eq!(report.evictions_total, 1);
    }
}
