//! Measures what the daemon exists for: warm-index predict throughput
//! versus paying the cold per-query cost (re-parse the graph text, build
//! the double cover, BFS) that a process-per-query workflow pays.
//!
//! ```text
//! bench_serve             # full grid (~1e6-edge instance per family)
//! bench_serve --smoke     # CI-sized instances
//! bench_serve --out PATH  # write the report somewhere else
//! ```
//!
//! Writes `BENCH_serve.json` (schema below). Every warm answer is
//! cross-checked against the cold oracle before timing is trusted: a
//! speedup over wrong answers would be worthless.
//!
//! Report schema (`schema_version` 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmark": "serve_predict",
//!   "mode": "full",
//!   "cases": [
//!     {
//!       "family": "grid",
//!       "spec": "grid(708x708)",
//!       "nodes": 501264,
//!       "edges": 1001112,
//!       "cold_queries": 2,
//!       "warm_queries": 64,
//!       "cold_ms_per_predict": 1234.5,
//!       "warm_ms_per_predict": 56.7,
//!       "warm_predictions_per_sec": 17.6,
//!       "speedup": 21.8
//!     }
//!   ]
//! }
//! ```

use std::process::ExitCode;
use std::time::Instant;

use af_core::theory;
use af_graph::{io, NodeId};
use af_serve::{Request, Response, Server};
use serde::Serialize;

/// One family's cold-versus-warm measurement.
#[derive(Debug, Serialize)]
struct ServeCase {
    family: String,
    spec: String,
    nodes: usize,
    edges: usize,
    cold_queries: usize,
    warm_queries: usize,
    cold_ms_per_predict: f64,
    warm_ms_per_predict: f64,
    warm_predictions_per_sec: f64,
    speedup: f64,
}

/// The whole report, as written to `BENCH_serve.json`.
#[derive(Debug, Serialize)]
struct ServeReport {
    schema_version: u32,
    benchmark: String,
    mode: String,
    cases: Vec<ServeCase>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_serve.json".to_owned();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return fail("--out needs a path"),
            },
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let report = run(smoke);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        return fail(&format!("writing {out}: {e}"));
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn fail(message: &str) -> ExitCode {
    eprintln!("bench_serve: {message}");
    ExitCode::FAILURE
}

fn run(smoke: bool) -> ServeReport {
    let (cold_queries, warm_queries) = if smoke { (4, 64) } else { (2, 64) };
    let mut cases = Vec::new();
    for (family, specs) in af_analysis::bench::cases(smoke) {
        let spec = specs.last().expect("every family has specs").clone();
        eprintln!("[{family}] building {spec} ...");
        let graph = spec.build();
        let text = io::to_edge_list(&graph);
        let (nodes, edges) = (graph.node_count(), graph.edge_count());

        // The served path: load once, predict many.
        let server = Server::default();
        let loaded = server.registry().execute(&Request::Load {
            name: family.to_owned(),
            graph: text.clone(),
        });
        assert!(matches!(loaded, Response::Registered { .. }), "{loaded:?}");

        let sources = spread_sources(nodes, warm_queries.max(cold_queries));
        let predict = |set: Vec<usize>| Request::Predict {
            graph: family.to_owned(),
            source_sets: vec![set],
        };

        // Untimed first query builds the index; its answer (and a few
        // more) are cross-checked against the free oracle.
        for &src in sources.iter().take(3) {
            let resp = server.registry().execute(&predict(vec![src]));
            let Response::Predicted { predictions } = resp else {
                panic!("predict failed: {resp:?}");
            };
            let oracle = theory::predict(&graph, [NodeId::new(src)]);
            assert_eq!(predictions[0].termination_round, oracle.termination_round());
            assert_eq!(predictions[0].total_messages, oracle.total_messages());
        }

        let start = Instant::now();
        for q in 0..warm_queries {
            let resp = server
                .registry()
                .execute(&predict(vec![sources[q % sources.len()]]));
            assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");
        }
        let warm = start.elapsed();

        // The cold path a daemon-less workflow pays per query: re-parse
        // the graph text, rebuild the double cover, BFS once.
        let start = Instant::now();
        for q in 0..cold_queries {
            let g = io::from_text(&text).expect("round-trips");
            let p = theory::predict(&g, [NodeId::new(sources[q % sources.len()])]);
            std::hint::black_box(p.termination_round());
        }
        let cold = start.elapsed();

        let cold_ms = cold.as_secs_f64() * 1e3 / cold_queries as f64;
        let warm_ms = warm.as_secs_f64() * 1e3 / warm_queries as f64;
        eprintln!(
            "[{family}] n={nodes} m={edges}: cold {cold_ms:.2} ms/predict, \
             warm {warm_ms:.3} ms/predict ({:.1}x)",
            cold_ms / warm_ms
        );
        cases.push(ServeCase {
            family: family.to_owned(),
            spec: spec.label(),
            nodes,
            edges,
            cold_queries,
            warm_queries,
            cold_ms_per_predict: cold_ms,
            warm_ms_per_predict: warm_ms,
            warm_predictions_per_sec: 1e3 / warm_ms,
            speedup: cold_ms / warm_ms,
        });
    }
    ServeReport {
        schema_version: 1,
        benchmark: "serve_predict".to_owned(),
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        cases,
    }
}

/// `count` well-spread node ids (first, stride steps, last).
fn spread_sources(n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n).max(1);
    (0..count).map(|i| i * (n - 1) / count.max(1)).collect()
}
