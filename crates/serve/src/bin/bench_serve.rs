//! Measures what the daemon exists for: warm-index predict throughput
//! versus paying the cold per-query cost (re-parse the graph text, build
//! the double cover, BFS) that a process-per-query workflow pays.
//!
//! ```text
//! bench_serve             # full grid (~1e6-edge instance per family)
//! bench_serve --smoke     # CI-sized instances
//! bench_serve --out PATH  # write the report somewhere else
//! ```
//!
//! Writes `BENCH_serve.json` (schema below). Every warm answer is
//! cross-checked against the cold oracle before timing is trusted: a
//! speedup over wrong answers would be worthless.
//!
//! Report schema (`schema_version` 2):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "benchmark": "serve_predict",
//!   "mode": "full",
//!   "cases": [
//!     {
//!       "family": "grid",
//!       "spec": "grid(708x708)",
//!       "nodes": 501264,
//!       "edges": 1001112,
//!       "cold_queries": 2,
//!       "warm_queries": 64,
//!       "cold_ms_per_predict": 1234.5,
//!       "warm_ms_per_predict": 56.7,
//!       "warm_predictions_per_sec": 17.6,
//!       "speedup": 21.8
//!     }
//!   ],
//!   "daemon": {
//!     "transport": "tcp",
//!     "pool": 4,
//!     "background_clients": 2,
//!     "background_predicts": 96,
//!     "graph": "grid(200x200)",
//!     "nodes": 40000,
//!     "edges": 79600,
//!     "runs": [ ...af_analysis::bench::EngineStats rows... ]
//!   }
//! }
//! ```
//!
//! The `daemon` section is **self-recorded**: the rows come back over a
//! real TCP connection as `Bench` verb responses — the daemon runs the
//! `af_analysis::bench` measurement harness in-process — while
//! background clients hammer the same worker pool with id-enveloped
//! `Predict` bursts. The numbers therefore describe a *live, loaded*
//! daemon, not a quiet library call.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use af_analysis::bench::EngineStats;
use af_analysis::GraphSpec;
use af_core::api::FloodRequest;
use af_core::theory;
use af_graph::{io, NodeId};
use af_serve::log_line;
use af_serve::{Envelope, Request, Response, Server, ServerConfig, TaggedResponse};
use serde::Serialize;

/// The `BENCH_serve.json` schema version — bump when the report shape
/// changes, together with its citations (module doc above, README, CI).
const SERVE_BENCH_SCHEMA_VERSION: u32 = 2;

/// One family's cold-versus-warm measurement.
#[derive(Debug, Serialize)]
struct ServeCase {
    family: String,
    spec: String,
    nodes: usize,
    edges: usize,
    cold_queries: usize,
    warm_queries: usize,
    cold_ms_per_predict: f64,
    warm_ms_per_predict: f64,
    warm_predictions_per_sec: f64,
    speedup: f64,
}

/// The daemon-self-recorded section: `Bench` verb rows measured by a
/// live TCP daemon while background clients load its worker pool.
#[derive(Debug, Serialize)]
struct DaemonSection {
    transport: String,
    pool: usize,
    background_clients: usize,
    background_predicts: usize,
    graph: String,
    nodes: usize,
    edges: usize,
    runs: Vec<EngineStats>,
}

/// The whole report, as written to `BENCH_serve.json`.
#[derive(Debug, Serialize)]
struct ServeReport {
    schema_version: u32,
    benchmark: String,
    mode: String,
    cases: Vec<ServeCase>,
    daemon: DaemonSection,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_serve.json".to_owned();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return fail("--out needs a path"),
            },
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let report = run(smoke);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        return fail(&format!("writing {out}: {e}"));
    }
    log_line!("wrote {out}");
    ExitCode::SUCCESS
}

fn fail(message: &str) -> ExitCode {
    log_line!("bench_serve: {message}");
    ExitCode::FAILURE
}

fn run(smoke: bool) -> ServeReport {
    let (cold_queries, warm_queries) = if smoke { (4, 64) } else { (2, 64) };
    let mut cases = Vec::new();
    for (family, specs) in af_analysis::bench::cases(smoke) {
        let spec = specs.last().expect("every family has specs").clone();
        log_line!("[{family}] building {spec} ...");
        let graph = spec.build();
        let text = io::to_edge_list(&graph);
        let (nodes, edges) = (graph.node_count(), graph.edge_count());

        // The served path: load once, predict many.
        let server = Server::default();
        let loaded = server.registry().execute(&Request::Load {
            name: family.to_owned(),
            graph: text.clone(),
        });
        assert!(matches!(loaded, Response::Registered { .. }), "{loaded:?}");

        let sources = spread_sources(nodes, warm_queries.max(cold_queries));
        let predict = |set: Vec<usize>| Request::Predict {
            graph: family.to_owned(),
            source_sets: vec![set],
        };

        // Untimed first query builds the index; its answer (and a few
        // more) are cross-checked against the free oracle.
        for &src in sources.iter().take(3) {
            let resp = server.registry().execute(&predict(vec![src]));
            let Response::Predicted { predictions } = resp else {
                panic!("predict failed: {resp:?}");
            };
            let oracle = theory::predict(&graph, [NodeId::new(src)]);
            assert_eq!(predictions[0].termination_round, oracle.termination_round());
            assert_eq!(predictions[0].total_messages, oracle.total_messages());
        }

        let start = Instant::now();
        for q in 0..warm_queries {
            let resp = server
                .registry()
                .execute(&predict(vec![sources[q % sources.len()]]));
            assert!(matches!(resp, Response::Predicted { .. }), "{resp:?}");
        }
        let warm = start.elapsed();

        // The cold path a daemon-less workflow pays per query: re-parse
        // the graph text, rebuild the double cover, BFS once.
        let start = Instant::now();
        for q in 0..cold_queries {
            let g = io::from_text(&text).expect("round-trips");
            let p = theory::predict(&g, [NodeId::new(sources[q % sources.len()])]);
            std::hint::black_box(p.termination_round());
        }
        let cold = start.elapsed();

        let cold_ms = cold.as_secs_f64() * 1e3 / cold_queries as f64;
        let warm_ms = warm.as_secs_f64() * 1e3 / warm_queries as f64;
        log_line!(
            "[{family}] n={nodes} m={edges}: cold {cold_ms:.2} ms/predict, \
             warm {warm_ms:.3} ms/predict ({:.1}x)",
            cold_ms / warm_ms
        );
        cases.push(ServeCase {
            family: family.to_owned(),
            spec: spec.label(),
            nodes,
            edges,
            cold_queries,
            warm_queries,
            cold_ms_per_predict: cold_ms,
            warm_ms_per_predict: warm_ms,
            warm_predictions_per_sec: 1e3 / warm_ms,
            speedup: cold_ms / warm_ms,
        });
    }
    ServeReport {
        schema_version: SERVE_BENCH_SCHEMA_VERSION,
        benchmark: "serve_predict".to_owned(),
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        cases,
        daemon: daemon_section(smoke),
    }
}

/// A pipelining NDJSON client for the daemon section (std only; the
/// integration tests have their own richer twin).
struct WireClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> WireClient {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        WireClient { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        self.stream.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end().to_owned()
    }
}

/// Runs a real TCP daemon, loads one grid, and has it measure its own
/// engines through the `Bench` verb while background clients keep the
/// worker pool busy with enveloped `Predict` bursts.
fn daemon_section(smoke: bool) -> DaemonSection {
    const POOL: usize = 4;
    const BACKGROUND_CLIENTS: usize = 2;
    let spec = if smoke {
        GraphSpec::Grid { rows: 30, cols: 30 }
    } else {
        GraphSpec::Grid {
            rows: 200,
            cols: 200,
        }
    };
    let graph = spec.build();
    let (nodes, edges) = (graph.node_count(), graph.edge_count());
    log_line!("[daemon] serving {} on TCP ...", spec.label());

    let server = Server::with_config(&ServerConfig {
        pool: POOL,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let stop = AtomicBool::new(false);
    let mut runs = Vec::new();
    let mut background_predicts = 0usize;

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));

        // Load over the wire, like any client would.
        let mut bencher = WireClient::connect(addr);
        let load = Request::Load {
            name: "bench".into(),
            graph: io::to_edge_list(&graph),
        };
        bencher.send(&serde_json::to_string(&load).expect("serialize"));
        let loaded = bencher.read_line();
        assert!(loaded.starts_with("{\"Registered\""), "{loaded}");

        // Background load: enveloped Predict bursts against the same
        // pool until the bench rows are in.
        let background: Vec<_> = (0..BACKGROUND_CLIENTS)
            .map(|c| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = WireClient::connect(addr);
                    let mut sent = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        for i in 0..8usize {
                            let envelope = Envelope {
                                id: (c * 1000 + sent + i) as u64,
                                request: Request::Predict {
                                    graph: "bench".into(),
                                    source_sets: vec![vec![(i * 97) % nodes]],
                                },
                            };
                            client.send(&serde_json::to_string(&envelope).expect("serialize"));
                        }
                        for _ in 0..8 {
                            let line = client.read_line();
                            assert!(line.contains("\"Predicted\""), "{line}");
                        }
                        sent += 8;
                    }
                    sent
                })
            })
            .collect();

        // The daemon measures itself: one Bench request per engine,
        // enveloped so the measurement also rides the pool.
        let sources = spread_sources(nodes, 4);
        for (i, engine) in ["frontier", "fast", "bitlane", "sharded:2:bfs"]
            .into_iter()
            .enumerate()
        {
            let envelope = Envelope {
                id: 9000 + i as u64,
                request: Request::Bench {
                    graph: "bench".into(),
                    request: FloodRequest {
                        source_sets: sources.iter().map(|&s| vec![s]).collect(),
                        engine: engine.into(),
                        max_rounds: 0,
                    },
                    repeat: 2,
                },
            };
            bencher.send(&serde_json::to_string(&envelope).expect("serialize"));
            let line = bencher.read_line();
            let tagged: TaggedResponse =
                serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            let Response::Benched { runs: rows, .. } = tagged.response else {
                panic!("bench failed for {engine}: {:?}", tagged.response);
            };
            for row in &rows {
                log_line!(
                    "[daemon] {}: {:.1} ms, {:.0} edges/s under load",
                    row.engine,
                    row.wall_ms,
                    row.edges_per_sec
                );
            }
            runs.extend(rows);
        }

        stop.store(true, Ordering::Relaxed);
        for worker in background {
            background_predicts += worker.join().expect("background client");
        }
        let shutdown = serde_json::to_string(&Request::Shutdown).expect("serialize");
        bencher.send(&shutdown);
        assert_eq!(bencher.read_line(), "\"ShuttingDown\"");
        serving.join().expect("server thread").expect("serve_tcp");
    });

    DaemonSection {
        transport: "tcp".into(),
        pool: POOL,
        background_clients: BACKGROUND_CLIENTS,
        background_predicts,
        graph: spec.label(),
        nodes,
        edges,
        runs,
    }
}

/// `count` well-spread node ids (first, stride steps, last).
fn spread_sources(n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n).max(1);
    (0..count).map(|i| i * (n - 1) / count.max(1)).collect()
}
