//! The `af-serve` daemon binary.
//!
//! ```text
//! af-serve                     # serve stdin/stdout (one JSON line each way)
//! af-serve --listen 127.0.0.1:7171   # serve TCP, thread per connection
//! af-serve --line-cap 1048576  # override the per-line byte cap
//! ```
//!
//! Diagnostics go to stderr; the protocol stream is never polluted. On
//! TCP the daemon prints `listening on <addr>` to stderr once the
//! socket is bound (with `--listen 127.0.0.1:0` the line reveals the
//! picked port). A `Shutdown` request on any connection drains and
//! stops the daemon; so does EOF on stdin in stdio mode.

use std::io::{self, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use af_serve::server::DEFAULT_LINE_CAP;
use af_serve::Server;

const USAGE: &str = "usage: af-serve [--listen ADDR] [--line-cap BYTES]

Serve the flooding protocol (PROTOCOL.md) as newline-delimited JSON.
Default transport is stdio; --listen ADDR serves TCP instead.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut line_cap = DEFAULT_LINE_CAP;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => match iter.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage_error("--listen needs an address"),
            },
            "--line-cap" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(cap)) if cap > 0 => line_cap = cap,
                _ => return usage_error("--line-cap needs a positive byte count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    let server = Server::new(line_cap);
    let outcome = match listen {
        Some(addr) => serve_tcp(&server, &addr),
        None => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            server.serve_stdio(BufReader::new(stdin.lock()), stdout.lock())
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("af-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_tcp(server: &Server, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("listening on {}", listener.local_addr()?);
    io::stderr().flush()?;
    server.serve_tcp(&listener)
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("af-serve: {message}\n{USAGE}");
    ExitCode::FAILURE
}
