//! The `af-serve` daemon binary.
//!
//! ```text
//! af-serve                     # serve stdin/stdout (one JSON line each way)
//! af-serve --listen 127.0.0.1:7171   # serve TCP, thread per connection
//! af-serve --line-cap 1048576  # override the per-line byte cap
//! af-serve --metrics-interval 30     # metrics snapshot to stderr every 30s
//! af-serve --pool 8            # workers for id-enveloped (out-of-order) requests
//! af-serve --registry-budget 268435456  # LRU-evict graphs past 256 MiB
//! af-serve --registry-dir graphs/       # pre-load every edge list in graphs/
//! ```
//!
//! Diagnostics go to stderr; the protocol stream is never polluted. On
//! TCP the daemon prints `listening on <addr>` to stderr once the
//! socket is bound (with `--listen 127.0.0.1:0` the line reveals the
//! picked port). A `Shutdown` request on any connection drains and
//! stops the daemon; so does EOF on stdin in stdio mode. Either way the
//! final stderr line is a full metrics snapshot (`af-serve: final
//! metrics {...}`); `--metrics-interval SECS` additionally emits the
//! same snapshot periodically while serving.

use std::io::{self, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use af_serve::log_line;
use af_serve::server::{ServerConfig, DEFAULT_LINE_CAP, DEFAULT_POOL};
use af_serve::Server;

const USAGE: &str = "usage: af-serve [--listen ADDR] [--line-cap BYTES] [--metrics-interval SECS]
                [--pool N] [--registry-budget BYTES] [--registry-dir DIR]

Serve the flooding protocol (PROTOCOL.md) as newline-delimited JSON.
Default transport is stdio; --listen ADDR serves TCP instead.
--pool N sizes the worker pool that runs id-enveloped requests out of
order (default 4). --registry-budget BYTES caps the bytes held by
registered graphs plus cached predict indexes, evicting least-recently
used graphs past the cap (default 0 = unbounded). --registry-dir DIR
pre-loads every edge-list file in DIR (graph name = file stem) before
serving. --metrics-interval SECS prints a metrics snapshot line to
stderr every SECS seconds (a final snapshot is always printed on
drain).";

/// How often the metrics ticker re-checks the shutdown flag while
/// waiting out its interval.
const TICK: Duration = Duration::from_millis(100);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut line_cap = DEFAULT_LINE_CAP;
    let mut pool = DEFAULT_POOL;
    let mut registry_budget = 0u64;
    let mut registry_dir: Option<PathBuf> = None;
    let mut metrics_interval: Option<Duration> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => match iter.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage_error("--listen needs an address"),
            },
            "--line-cap" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(cap)) if cap > 0 => line_cap = cap,
                _ => return usage_error("--line-cap needs a positive byte count"),
            },
            "--pool" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => pool = n,
                _ => return usage_error("--pool needs a positive worker count"),
            },
            "--registry-budget" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(bytes)) if bytes > 0 => registry_budget = bytes,
                _ => return usage_error("--registry-budget needs a positive byte count"),
            },
            "--registry-dir" => match iter.next() {
                Some(dir) => registry_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--registry-dir needs a directory"),
            },
            "--metrics-interval" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(secs)) if secs > 0 => metrics_interval = Some(Duration::from_secs(secs)),
                _ => return usage_error("--metrics-interval needs a positive second count"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    let server = Server::with_config(&ServerConfig {
        line_cap,
        pool,
        registry_budget,
    });
    if let Some(dir) = registry_dir {
        match server.load_registry_dir(&dir) {
            Ok(loaded) => log_line!("af-serve: registry-dir loaded {loaded} graph(s)"),
            Err(e) => {
                log_line!("af-serve: --registry-dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = std::thread::scope(|scope| {
        if let Some(interval) = metrics_interval {
            let server = &server;
            scope.spawn(move || metrics_ticker(server, interval));
        }
        let outcome = match listen {
            Some(addr) => serve_tcp(&server, &addr),
            None => {
                let stdin = io::stdin();
                // `io::stdout()` (not its lock): the pool workers need a
                // `Send` writer to answer enveloped requests.
                server.serve_stdio(BufReader::new(stdin.lock()), io::stdout())
            }
        };
        // Release the ticker even when the transport ended without a
        // Shutdown request (EOF on stdin, a listener error).
        server.begin_shutdown();
        outcome
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log_line!("af-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints a metrics snapshot line to stderr every `interval` until the
/// server starts draining, polling the flag so shutdown never waits out
/// a long interval.
fn metrics_ticker(server: &Server, interval: Duration) {
    let mut waited = Duration::ZERO;
    while !server.is_shutting_down() {
        std::thread::sleep(TICK);
        waited += TICK;
        if waited >= interval {
            waited = Duration::ZERO;
            if !server.is_shutting_down() {
                log_line!("af-serve: {}", server.metrics_line());
            }
        }
    }
}

fn serve_tcp(server: &Server, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    log_line!("listening on {}", listener.local_addr()?);
    io::stderr().flush()?;
    server.serve_tcp(&listener)
}

fn usage_error(message: &str) -> ExitCode {
    log_line!("af-serve: {message}\n{USAGE}");
    ExitCode::FAILURE
}
