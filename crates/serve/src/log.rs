//! The serve crate's single stderr sink.
//!
//! Stdout is the wire — one NDJSON response per line — so every human-
//! or validator-facing diagnostic goes to stderr, and all of it funnels
//! through [`line`], the one place in the crate allowed to write there
//! (`af-audit` rule `AF003 stderr-via-log-sink` enforces this). The sink
//! deliberately adds no prefix or timestamp: several stderr lines
//! (`listening on <addr>`, `af-serve: final metrics {...}`) are parsed
//! verbatim by the CI smoke validators, so call sites own their text
//! byte for byte.

use std::fmt;

/// Writes one diagnostic line to stderr. Use via [`crate::log_line!`].
pub fn line(args: fmt::Arguments<'_>) {
    eprintln!("{args}"); // af-audit: allow(stderr-via-log-sink): the one designated sink
}

/// Drop-in `eprintln!` replacement that routes through the crate's one
/// stderr sink, [`line`].
#[macro_export]
macro_rules! log_line {
    ($($arg:tt)*) => {
        $crate::log::line(core::format_args!($($arg)*))
    };
}
