//! The transports: newline-delimited JSON over TCP (thread per
//! connection) and over stdio (one reader thread), both driving the same
//! [`Registry`] through the same parse/dispatch path — so anything the
//! integration tests prove about one transport holds for the other.
//!
//! Robustness contract (PROTOCOL.md, "Errors"): a malformed line —
//! garbage bytes, truncated JSON, an unknown verb, a line over the cap —
//! produces a structured [`Response::Error`] on that line's slot and the
//! connection survives. The only things that end a connection are EOF,
//! an I/O error on the socket, and server shutdown. `Shutdown` flips a
//! flag: the listener stops accepting, in-flight requests finish and
//! their responses are written, later requests get a `shutting_down`
//! error, and `serve_tcp` returns once every connection thread drains.
//!
//! Concurrency model (PROTOCOL.md, "Request ids"): a bare request line
//! executes **inline** on its connection thread — strictly in order, one
//! response per request, exactly the PR-7 semantics. A request wrapped in
//! an id [`Envelope`] is dispatched to the shared **worker pool** and its
//! [`TaggedResponse`] may come back out of order; the connection's writer
//! is a mutex, so inline and pooled responses interleave only at line
//! granularity. `Shutdown` always executes inline (even enveloped), and
//! the drain ordering is structural: connection threads exit first, then
//! the queue closes, then the workers finish every job accepted before
//! the close — so a `Shutdown` racing queued work never loses a response.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use af_core::api::{code, ErrorResponse};
use parking_lot::Mutex;

use crate::protocol::{Envelope, Request, Response, TaggedResponse};
use crate::registry::Registry;

/// Default cap on one request line, in bytes (64 MiB — a `Load` of a
/// million-edge edge-list text is ~14 MiB, so real workloads fit with
/// room; a missing-newline stream cannot buffer unboundedly).
pub const DEFAULT_LINE_CAP: usize = 64 << 20;

/// Default worker-pool size for enveloped (id-tagged) requests.
pub const DEFAULT_POOL: usize = 4;

/// How long a connection thread blocks in a read before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Construction-time knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-line byte cap ([`DEFAULT_LINE_CAP`]).
    pub line_cap: usize,
    /// Worker threads shared by all connections for enveloped requests
    /// ([`DEFAULT_POOL`]; clamped to at least 1).
    pub pool: usize,
    /// Registry byte budget for graph snapshots plus predict indexes;
    /// 0 = unbounded. See [`Registry::with_budget`].
    pub registry_budget: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            line_cap: DEFAULT_LINE_CAP,
            pool: DEFAULT_POOL,
            registry_budget: 0,
        }
    }
}

/// The shared server state: one registry plus the shutdown latch.
///
/// Transport-free by itself — [`Server::handle_line`] maps one bare
/// request line to one response, and [`Server::serve_tcp`] /
/// [`Server::serve_stdio`] wrap the full parse/dispatch path (envelopes
/// included) in a transport. Tests drive `handle_line` directly to pin
/// wire behavior without sockets.
#[derive(Debug)]
pub struct Server {
    registry: Registry,
    shutting_down: AtomicBool,
    metrics_flushed: AtomicBool,
    line_cap: usize,
    pool_size: usize,
}

impl Default for Server {
    fn default() -> Self {
        Server::new(DEFAULT_LINE_CAP)
    }
}

impl Server {
    /// A server with an empty unbounded registry, the given per-line
    /// byte cap, and the default pool size.
    #[must_use]
    pub fn new(line_cap: usize) -> Self {
        Server::with_config(&ServerConfig {
            line_cap,
            ..ServerConfig::default()
        })
    }

    /// A server built from explicit [`ServerConfig`] knobs.
    #[must_use]
    pub fn with_config(config: &ServerConfig) -> Self {
        let pool_size = config.pool.max(1);
        let server = Server {
            registry: Registry::with_budget(config.registry_budget),
            shutting_down: AtomicBool::new(false),
            metrics_flushed: AtomicBool::new(false),
            line_cap: config.line_cap,
            pool_size,
        };
        server.registry.metrics().set_pool_workers(pool_size as u64);
        server
    }

    /// The graph registry (shared by every connection).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Worker threads each transport runs for enveloped requests.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Has a `Shutdown` request been accepted?
    ///
    /// Relaxed suffices: the flag is monotonic (false → true, once) and
    /// only gates *when* a loop notices the drain — the drain's
    /// correctness is structural (scope joins, then queue close), not
    /// ordering-dependent.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Begins the drain: no new work is accepted, the TCP accept loop
    /// stops, connection threads exit after their current request.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
    }

    /// Registers every file in `dir` (sorted by path, name = file stem)
    /// through the same text-sniffing path a `Load` request takes —
    /// the `--registry-dir` boot loader. A file that fails to read or
    /// parse is warned to stderr and skipped; the daemon still boots.
    /// Boot loads do not count as wire requests. Returns how many
    /// graphs were registered.
    ///
    /// # Errors
    ///
    /// Propagates a missing or unreadable directory (a misspelled
    /// `--registry-dir` should fail loudly, not boot an empty daemon).
    pub fn load_registry_dir(&self, dir: &Path) -> io::Result<usize> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.is_file())
            .collect();
        paths.sort();
        let mut loaded = 0;
        for path in paths {
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                crate::log_line!("af-serve: skipping {} (unusable file name)", path.display());
                continue;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    crate::log_line!("af-serve: skipping {}: {e}", path.display());
                    continue;
                }
            };
            match self.registry.register_from_text(name, &text) {
                Ok(Response::Registered { nodes, edges, .. }) => {
                    crate::log_line!(
                        "af-serve: loaded '{name}' ({nodes} nodes, {edges} edges) from {}",
                        path.display()
                    );
                    loaded += 1;
                }
                Ok(other) => unreachable!("register answers Registered, got {other:?}"),
                Err(e) => crate::log_line!("af-serve: skipping {}: {e}", path.display()),
            }
        }
        Ok(loaded)
    }

    /// Answers one **bare** request line inline: parse, execute, and
    /// return the [`Response`] — never panicking and never killing the
    /// caller's connection. Every error path is a structured
    /// [`Response::Error`]. (Envelope routing is a transport feature;
    /// an envelope line here answers `bad_request`.)
    pub fn handle_line(&self, line: &str) -> Response {
        if self.is_shutting_down() {
            self.registry.count_request();
            return self.registry.reject(ErrorResponse::new(
                code::SHUTTING_DOWN,
                "server is draining for shutdown",
            ));
        }
        let request: Request = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => {
                self.registry.count_request();
                return self
                    .registry
                    .reject(ErrorResponse::new(code::BAD_REQUEST, format!("{e}")));
            }
        };
        if matches!(request, Request::Shutdown) {
            self.begin_shutdown();
        }
        self.registry.execute(&request)
    }

    /// [`Self::handle_line`], serialized back to one response line
    /// (without the trailing newline).
    #[must_use]
    pub fn handle_json(&self, line: &str) -> String {
        serialize(&self.handle_line(line))
    }

    /// The current metrics snapshot as the daemon's stderr line form:
    /// `metrics {json}`, where the JSON is a
    /// [`crate::protocol::MetricsReport`].
    #[must_use]
    pub fn metrics_line(&self) -> String {
        let report = self.registry.metrics_report();
        format!("metrics {}", serialize(&report))
    }

    /// Writes the final metrics snapshot line to stderr, at most once
    /// per server — called when a transport loop drains (`Shutdown` or
    /// EOF), so even a daemon killed right after the drain leaves
    /// evidence of what it served. (Relaxed: the swap alone decides the
    /// unique winner; nothing else is published through this flag.)
    pub fn flush_final_metrics(&self) {
        if !self.metrics_flushed.swap(true, Ordering::Relaxed) {
            crate::log_line!("af-serve: final {}", self.metrics_line());
        }
    }

    /// The response for a line that exceeded the cap (counted).
    fn oversized(&self) -> Response {
        self.registry.count_request();
        self.registry.reject(ErrorResponse::new(
            code::OVERSIZED,
            format!("request line exceeds the {}-byte cap", self.line_cap),
        ))
    }

    /// Serves newline-delimited JSON on stdin/stdout until EOF or a
    /// `Shutdown` request. Bare requests answer inline in order;
    /// enveloped requests run on the pool and may answer out of order.
    /// Returns only after every accepted pool job has written its
    /// response.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the two streams.
    pub fn serve_stdio<W: Write + Send>(&self, input: impl BufRead, output: W) -> io::Result<()> {
        self.registry.metrics().connection_opened();
        let queue = JobQueue::new();
        let out = Arc::new(Mutex::new(output));
        let result = crossbeam::scope(|scope| {
            let queue = &queue;
            for _ in 0..self.pool_size {
                scope.spawn(move |_| self.pool_worker(queue));
            }
            let result = self.stdio_loop(input, &out, queue);
            // EOF or Shutdown: no more pushes can happen; the workers
            // drain what was accepted and exit.
            queue.close();
            result
        })
        // The scope errors only if a worker panicked; surface that as
        // an I/O error instead of propagating the panic.
        .map_err(|_| io::Error::other("a pool worker panicked"))
        .and_then(|r| r);
        self.flush_final_metrics();
        result
    }

    /// The stdio read loop, separated so the scope in
    /// [`Self::serve_stdio`] stays readable.
    fn stdio_loop<W: Write + Send>(
        &self,
        input: impl BufRead,
        out: &Arc<Mutex<W>>,
        queue: &JobQueue<W>,
    ) -> io::Result<()> {
        let mut lines = LineReader::new(input, self.line_cap);
        loop {
            match lines.next_line()? {
                LineRead::Eof => return Ok(()),
                LineRead::Blank => continue,
                LineRead::Oversized => {
                    let response = self.oversized();
                    self.write_line(out, &serialize(&response))?;
                }
                LineRead::Line(line) => {
                    self.registry
                        .metrics()
                        .add_bytes_read(line.len() as u64 + 1);
                    self.dispatch(&line, out, queue)?;
                }
            }
            if self.is_shutting_down() {
                return Ok(());
            }
        }
    }

    /// Serves newline-delimited JSON on a TCP listener, one thread per
    /// connection plus the shared worker pool, until a `Shutdown`
    /// request on any connection. Returns after the drain: every
    /// connection thread has exited, every accepted pool job has written
    /// its response, and every worker has stopped.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection I/O errors only
    /// end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let queue = JobQueue::new();
        let outcome = crossbeam::scope(|workers| -> io::Result<()> {
            let queue = &queue;
            for _ in 0..self.pool_size {
                workers.spawn(move |_| self.pool_worker(queue));
            }
            // The inner scope joins every connection thread before the
            // outer closure resumes — only then is it safe to close the
            // queue, because nobody can push after the close.
            let result = crossbeam::scope(|scope| -> io::Result<()> {
                while !self.is_shutting_down() {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            scope.spawn(move |_| {
                                // A dropped client is that client's problem.
                                let _ = self.serve_connection(stream, queue);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            })
            .map_err(|_| io::Error::other("a connection thread panicked"))
            .and_then(|r| r);
            queue.close();
            result
        });
        let result = outcome
            .map_err(|_| io::Error::other("a pool worker panicked"))
            .and_then(|r| r);
        self.flush_final_metrics();
        result
    }

    /// One connection's request/response loop. Responses (inline and
    /// pooled) funnel through the shared writer mutex; the stream clone
    /// inside each queued job keeps the socket alive even if this
    /// thread exits before the pool answers.
    fn serve_connection(&self, stream: TcpStream, queue: &JobQueue<TcpStream>) -> io::Result<()> {
        self.registry.metrics().connection_opened();
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let reader = BufReader::new(stream.try_clone()?);
        let out = Arc::new(Mutex::new(stream));
        let mut lines = LineReader::new(reader, self.line_cap);
        loop {
            match lines.next_line() {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Read timeout: no data right now. Keep waiting
                    // unless the server is draining.
                    if self.is_shutting_down() {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => return Err(e),
                Ok(LineRead::Eof) => return Ok(()),
                Ok(LineRead::Blank) => continue,
                Ok(LineRead::Oversized) => {
                    let response = self.oversized();
                    self.write_line(&out, &serialize(&response))?;
                }
                Ok(LineRead::Line(line)) => {
                    self.registry
                        .metrics()
                        .add_bytes_read(line.len() as u64 + 1);
                    self.dispatch(&line, &out, queue)?;
                }
            }
            if self.is_shutting_down() {
                // Either this client asked for shutdown (it just got its
                // `ShuttingDown` ack) or another did (this one just got
                // its final inline response; its queued jobs still
                // answer during the drain); close the connection so the
                // accept loop's scope can drain.
                return Ok(());
            }
        }
    }

    /// Routes one parsed line: bare requests inline (in order),
    /// enveloped requests to the pool (out of order), `Shutdown` always
    /// inline so the ack is written before the drain begins.
    fn dispatch<W: Write + Send>(
        &self,
        line: &str,
        out: &Arc<Mutex<W>>,
        queue: &JobQueue<W>,
    ) -> io::Result<()> {
        if self.is_shutting_down() {
            self.registry.count_request();
            let response = self.registry.reject(ErrorResponse::new(
                code::SHUTTING_DOWN,
                "server is draining for shutdown",
            ));
            return self.write_line(out, &serialize(&response));
        }
        match parse_line(line) {
            Parsed::Bare(request) => {
                if matches!(request, Request::Shutdown) {
                    self.begin_shutdown();
                }
                let response = self.registry.execute(&request);
                self.write_line(out, &serialize(&response))
            }
            Parsed::Enveloped(id, request) => {
                if matches!(request, Request::Shutdown) {
                    self.begin_shutdown();
                    let response = self.registry.execute(&request);
                    return self.write_tagged(out, TaggedResponse { id, response });
                }
                self.registry.metrics().job_enqueued();
                queue.push(Job {
                    id,
                    request,
                    out: Arc::clone(out),
                });
                Ok(())
            }
            Parsed::BadEnvelope(id, message) => {
                self.registry.count_request();
                let response = self
                    .registry
                    .reject(ErrorResponse::new(code::BAD_REQUEST, message));
                self.write_tagged(out, TaggedResponse { id, response })
            }
            Parsed::Bad(message) => {
                self.registry.count_request();
                let response = self
                    .registry
                    .reject(ErrorResponse::new(code::BAD_REQUEST, message));
                self.write_line(out, &serialize(&response))
            }
        }
    }

    /// One pool worker: pop, execute, write the tagged response to the
    /// job's connection. Runs until the queue closes *and* empties. A
    /// failed write means the client vanished — that job's response is
    /// dropped, the worker (and every other connection) lives on.
    fn pool_worker<W: Write + Send>(&self, queue: &JobQueue<W>) {
        while let Some(job) = queue.pop() {
            let response = self.registry.execute(&job.request);
            let _ = self.write_tagged(
                &job.out,
                TaggedResponse {
                    id: job.id,
                    response,
                },
            );
            self.registry.metrics().job_finished();
        }
    }

    /// Serializes and writes one tagged response line.
    fn write_tagged<W: Write>(&self, out: &Mutex<W>, tagged: TaggedResponse) -> io::Result<()> {
        let line = serialize(&tagged);
        self.write_line(out, &line)
    }

    /// Writes one response line under the connection's writer mutex and
    /// counts its bytes.
    fn write_line<W: Write>(&self, out: &Mutex<W>, line: &str) -> io::Result<()> {
        {
            let mut writer = out.lock();
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        self.registry
            .metrics()
            .add_bytes_written(line.len() as u64 + 1);
        Ok(())
    }
}

/// Serializes one wire value to its single-line JSON form. Our response
/// and report types always serialize; if that invariant ever breaks the
/// client gets a structured error line, not a panicking daemon.
fn serialize<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| {
        let msg = format!("serialization failed: {e}").replace(['"', '\\'], "'");
        format!("{{\"Error\":{{\"code\":\"bad_request\",\"message\":\"{msg}\"}}}}")
    })
}

/// How one request line parsed.
enum Parsed {
    /// A bare [`Request`]: execute inline, answer in order.
    Bare(Request),
    /// A well-formed [`Envelope`]: dispatch to the pool.
    Enveloped(u64, Request),
    /// An envelope whose inner request is malformed — the id still
    /// parses, so the error can be correlated.
    BadEnvelope(u64, String),
    /// Neither shape parsed.
    Bad(String),
}

/// The id-recovery probe for malformed envelopes: any JSON object with
/// a numeric `id` field (other fields ignored).
#[derive(serde::Deserialize)]
struct IdProbe {
    id: u64,
}

/// Three-stage parse: bare request, then envelope, then id probe. The
/// shapes are disjoint (a bare request line is a string or a one-entry
/// object; an envelope is a two-entry object), so the order only
/// determines which error message a garbage line gets.
fn parse_line(line: &str) -> Parsed {
    match serde_json::from_str::<Request>(line) {
        Ok(request) => Parsed::Bare(request),
        Err(bare_error) => match serde_json::from_str::<Envelope>(line) {
            Ok(envelope) => Parsed::Enveloped(envelope.id, envelope.request),
            Err(envelope_error) => match serde_json::from_str::<IdProbe>(line) {
                Ok(probe) => Parsed::BadEnvelope(probe.id, format!("{envelope_error}")),
                Err(_) => Parsed::Bad(format!("{bare_error}")),
            },
        },
    }
}

/// One queued unit of pool work: an enveloped request plus the shared
/// writer of the connection that sent it.
struct Job<W> {
    id: u64,
    request: Request,
    out: Arc<Mutex<W>>,
}

/// The shared job queue: a mutex-guarded deque plus a condvar (std's —
/// the vendored `parking_lot` shim has no condvar). `pop` blocks until
/// a job arrives or the queue is closed *and* drained, which is exactly
/// the shutdown contract the workers need.
struct JobQueue<W> {
    state: StdMutex<QueueState<W>>,
    ready: Condvar,
}

struct QueueState<W> {
    jobs: VecDeque<Job<W>>,
    closed: bool,
}

impl<W> JobQueue<W> {
    fn new() -> Self {
        JobQueue {
            state: StdMutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    // Poison recovery is sound for this queue: every critical section
    // is a single deque/flag operation that cannot be observed half
    // done, so a panic elsewhere while holding the lock leaves a
    // consistent state worth continuing the drain with.

    fn push(&self, job: Job<W>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(!state.closed, "push after close");
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job<W>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One read outcome from [`LineReader`].
enum LineRead {
    /// The stream ended cleanly.
    Eof,
    /// A whitespace-only line (ignored by both transports).
    Blank,
    /// One complete line within the cap.
    Line(String),
    /// A line exceeded the cap; its bytes were discarded through the
    /// next newline (or EOF) and the stream is positioned after it.
    Oversized,
}

/// A byte-capped, *resumable* line reader: if the underlying reader
/// returns a timeout error mid-line (TCP read timeouts, used to poll the
/// shutdown flag), the partial line is kept and the next call continues
/// it — `BufRead::read_line` would lose that property.
struct LineReader<R> {
    reader: R,
    cap: usize,
    buf: Vec<u8>,
    overflow: bool,
}

impl<R: BufRead> LineReader<R> {
    fn new(reader: R, cap: usize) -> Self {
        LineReader {
            reader,
            cap,
            buf: Vec::new(),
            overflow: false,
        }
    }

    fn next_line(&mut self) -> io::Result<LineRead> {
        loop {
            let available = self.reader.fill_buf()?;
            if available.is_empty() {
                // EOF. A partial unterminated line still gets answered.
                return Ok(if self.overflow {
                    self.overflow = false;
                    LineRead::Oversized
                } else if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    self.take_line()
                });
            }
            let (chunk, terminated, consumed) = match available.iter().position(|&b| b == b'\n') {
                Some(i) => (&available[..i], true, i + 1),
                None => (available, false, available.len()),
            };
            if !self.overflow {
                self.buf.extend_from_slice(chunk);
                if self.buf.len() > self.cap {
                    self.overflow = true;
                    self.buf.clear();
                }
            }
            self.reader.consume(consumed);
            if terminated {
                return Ok(if self.overflow {
                    self.overflow = false;
                    LineRead::Oversized
                } else {
                    self.take_line()
                });
            }
        }
    }

    fn take_line(&mut self) -> LineRead {
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        if line.trim().is_empty() {
            LineRead::Blank
        } else {
            LineRead::Line(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_analysis::GraphSpec;

    fn gen_line(name: &str, spec: &GraphSpec) -> String {
        serde_json::to_string(&Request::Gen {
            name: name.into(),
            spec: spec.clone(),
        })
        .unwrap()
    }

    #[test]
    fn malformed_lines_answer_with_errors_and_the_server_survives() {
        let server = Server::default();
        for garbage in [
            "not json at all",
            "{\"Load\": {\"name\": \"g\"",   // truncated
            "{\"Warp\": {}}",                // unknown verb
            "{\"Load\": {\"name\": \"g\"}}", // missing field
            "[1, 2, 3]",                     // wrong shape
            "\"Load\"",                      // payload verb as unit
        ] {
            let resp = server.handle_line(garbage);
            let Response::Error(err) = resp else {
                panic!("expected error for {garbage:?}, got {resp:?}");
            };
            assert_eq!(err.code, code::BAD_REQUEST, "{garbage:?}");
        }
        // The server still works after all that garbage.
        let resp = server.handle_line(&gen_line("g", &GraphSpec::Petersen));
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let Response::Stats(stats) = server.handle_line("\"Stats\"") else {
            panic!("stats");
        };
        assert_eq!(stats.errors, 6);
        assert_eq!(stats.requests, 8);
    }

    #[test]
    fn stdio_session_runs_and_shutdown_stops_it() {
        let server = Server::default();
        let input = format!(
            "{}\n{}\n\n\"Shutdown\"\n{}\n",
            gen_line("g", &GraphSpec::Cycle { n: 5 }),
            "{\"Predict\": {\"graph\": \"g\", \"source_sets\": [[0]]}}",
            "\"Stats\"", // never answered: the server stopped at Shutdown
        );
        let mut output = Vec::new();
        server.serve_stdio(input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with("{\"Registered\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"Predicted\""), "{}", lines[1]);
        assert_eq!(lines[2], "\"ShuttingDown\"");
        assert!(server.is_shutting_down());
        // Post-shutdown lines are refused, not executed.
        let Response::Error(err) = server.handle_line("\"Stats\"") else {
            panic!("expected shutting_down error");
        };
        assert_eq!(err.code, code::SHUTTING_DOWN);
    }

    #[test]
    fn oversized_lines_error_and_the_session_continues() {
        let server = Server::new(256);
        let big = format!(
            "{{\"Load\": {{\"name\": \"big\", \"graph\": \"{}\"}}}}",
            "x".repeat(512)
        );
        let input = format!("{big}\n{}\n", gen_line("g", &GraphSpec::Petersen));
        let mut output = Vec::new();
        server.serve_stdio(input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"oversized\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"Registered\""), "{}", lines[1]);
    }

    #[test]
    fn oversized_final_line_without_newline_still_answers() {
        let server = Server::new(16);
        let mut output = Vec::new();
        server
            .serve_stdio("x".repeat(64).as_bytes(), &mut output)
            .unwrap();
        let text = std::str::from_utf8(&output).unwrap();
        assert!(text.contains("\"oversized\""), "{text}");
    }

    #[test]
    fn line_reader_resumes_across_split_chunks() {
        // A reader that yields one byte per fill_buf models a slow
        // socket; the capped reader must reassemble the line.
        struct OneByte<'a>(&'a [u8]);
        impl io::Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                let n = usize::from(!self.0.is_empty() && !out.is_empty());
                if n == 1 {
                    out[0] = self.0[0];
                    self.0 = &self.0[1..];
                }
                Ok(n)
            }
        }
        let reader = BufReader::with_capacity(1, OneByte(b"\"Stats\"\nrest\n"));
        let mut lines = LineReader::new(reader, 64);
        let LineRead::Line(first) = lines.next_line().unwrap() else {
            panic!("line");
        };
        assert_eq!(first, "\"Stats\"");
        let LineRead::Line(second) = lines.next_line().unwrap() else {
            panic!("line");
        };
        assert_eq!(second, "rest");
        assert!(matches!(lines.next_line().unwrap(), LineRead::Eof));
    }

    #[test]
    fn parse_line_distinguishes_all_four_shapes() {
        assert!(matches!(parse_line("\"Stats\""), Parsed::Bare(_)));
        assert!(matches!(
            parse_line("{\"id\": 9, \"request\": \"Stats\"}"),
            Parsed::Enveloped(9, Request::Stats)
        ));
        // A malformed inner request still correlates by id.
        let Parsed::BadEnvelope(id, _) = parse_line("{\"id\": 3, \"request\": {\"Warp\": {}}}")
        else {
            panic!("expected BadEnvelope");
        };
        assert_eq!(id, 3);
        let Parsed::BadEnvelope(id, _) = parse_line("{\"id\": 4}") else {
            panic!("expected BadEnvelope");
        };
        assert_eq!(id, 4);
        assert!(matches!(parse_line("not json"), Parsed::Bad(_)));
        assert!(matches!(
            parse_line("{\"id\": \"nine\", \"request\": \"Stats\"}"),
            Parsed::Bad(_)
        ));
    }

    #[test]
    fn tagged_response_wire_shape_is_pinned() {
        let tagged = TaggedResponse {
            id: 7,
            response: Response::ShuttingDown,
        };
        assert_eq!(
            serde_json::to_string(&tagged).unwrap(),
            "{\"id\":7,\"response\":\"ShuttingDown\"}"
        );
    }

    #[test]
    fn stdio_envelopes_run_on_the_pool_and_correlate_by_id() {
        let server = Server::with_config(&ServerConfig {
            pool: 2,
            ..ServerConfig::default()
        });
        // A bare Gen (inline, first line out), then three enveloped
        // requests that may answer in any order, then EOF drains.
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            gen_line("g", &GraphSpec::Cycle { n: 8 }),
            "{\"id\": 1, \"request\": {\"Predict\": {\"graph\": \"g\", \"source_sets\": [[0]]}}}",
            "{\"id\": 2, \"request\": {\"Flood\": {\"graph\": \"g\", \"sources\": [0], \
             \"engine\": \"\", \"max_rounds\": 0}}}",
            "{\"id\": 3, \"request\": {\"Predict\": {\"graph\": \"ghost\", \
             \"source_sets\": [[0]]}}}",
        );
        let mut output = Vec::new();
        server.serve_stdio(input.as_bytes(), &mut output).unwrap();
        let text = std::str::from_utf8(&output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[0].starts_with("{\"Registered\""), "{}", lines[0]);
        // The three tagged responses arrive in some order; correlate.
        let mut seen = std::collections::BTreeMap::new();
        for line in &lines[1..] {
            let tagged: TaggedResponse = serde_json::from_str(line).unwrap();
            seen.insert(tagged.id, tagged.response);
        }
        assert!(matches!(seen.get(&1), Some(Response::Predicted { .. })));
        assert!(matches!(seen.get(&2), Some(Response::Flooded(_))));
        let Some(Response::Error(err)) = seen.get(&3) else {
            panic!("expected error for ghost, got {:?}", seen.get(&3));
        };
        assert_eq!(err.code, code::UNKNOWN_GRAPH);
        // All three went through the pool.
        let report = server.registry().metrics_report();
        assert_eq!(report.pool_jobs_total, 3);
        assert_eq!(report.pool_depth, 0, "drained before returning");
        assert_eq!(report.pool_workers, 2);
        // Counters balance: 4 parsed requests, all on verb rows.
        assert_eq!(report.requests_total, 4);
        let verb_sum: u64 = report.verbs.iter().map(|v| v.count).sum();
        assert_eq!(verb_sum, report.requests_total);
    }
}
