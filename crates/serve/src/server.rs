//! The transports: newline-delimited JSON over TCP (thread per
//! connection) and over stdio (single-threaded), both driving the same
//! [`Registry`] through the same [`Server::handle_line`] — so anything
//! the integration tests prove about one transport holds for the other.
//!
//! Robustness contract (PROTOCOL.md, "Errors"): a malformed line —
//! garbage bytes, truncated JSON, an unknown verb, a line over the cap —
//! produces a structured [`Response::Error`] on that line's slot and the
//! connection survives. The only things that end a connection are EOF,
//! an I/O error on the socket, and server shutdown. `Shutdown` flips a
//! flag: the listener stops accepting, in-flight requests finish and
//! their responses are written, later requests get a `shutting_down`
//! error, and `serve_tcp` returns once every connection thread drains.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use af_core::api::{code, ErrorResponse};

use crate::protocol::{Request, Response};
use crate::registry::Registry;

/// Default cap on one request line, in bytes (64 MiB — a `Load` of a
/// million-edge edge-list text is ~14 MiB, so real workloads fit with
/// room; a missing-newline stream cannot buffer unboundedly).
pub const DEFAULT_LINE_CAP: usize = 64 << 20;

/// How long a connection thread blocks in a read before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The shared server state: one registry plus the shutdown latch.
///
/// Transport-free by itself — [`Server::handle_line`] maps one request
/// line to one response, and [`Server::serve_tcp`] /
/// [`Server::serve_stdio`] wrap it in a transport. Tests drive
/// `handle_line` directly to pin wire behavior without sockets.
#[derive(Debug)]
pub struct Server {
    registry: Registry,
    shutting_down: AtomicBool,
    metrics_flushed: AtomicBool,
    line_cap: usize,
}

impl Default for Server {
    fn default() -> Self {
        Server::new(DEFAULT_LINE_CAP)
    }
}

impl Server {
    /// A server with an empty registry and the given per-line byte cap.
    #[must_use]
    pub fn new(line_cap: usize) -> Self {
        Server {
            registry: Registry::new(),
            shutting_down: AtomicBool::new(false),
            metrics_flushed: AtomicBool::new(false),
            line_cap,
        }
    }

    /// The graph registry (shared by every connection).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Has a `Shutdown` request been accepted?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Begins the drain: no new work is accepted, the TCP accept loop
    /// stops, connection threads exit after their current request.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Answers one request line: parse, execute, and return the
    /// [`Response`] — never panicking and never killing the caller's
    /// connection. Every error path is a structured [`Response::Error`].
    pub fn handle_line(&self, line: &str) -> Response {
        if self.is_shutting_down() {
            self.registry.count_request();
            return self.registry.reject(ErrorResponse::new(
                code::SHUTTING_DOWN,
                "server is draining for shutdown",
            ));
        }
        let request: Request = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => {
                self.registry.count_request();
                return self
                    .registry
                    .reject(ErrorResponse::new(code::BAD_REQUEST, format!("{e}")));
            }
        };
        if matches!(request, Request::Shutdown) {
            self.begin_shutdown();
        }
        self.registry.execute(&request)
    }

    /// [`Self::handle_line`], serialized back to one response line
    /// (without the trailing newline).
    #[must_use]
    pub fn handle_json(&self, line: &str) -> String {
        serialize(&self.handle_line(line))
    }

    /// The current metrics snapshot as the daemon's stderr line form:
    /// `metrics {json}`, where the JSON is a
    /// [`crate::protocol::MetricsReport`].
    #[must_use]
    pub fn metrics_line(&self) -> String {
        let report = self.registry.metrics_report();
        format!(
            "metrics {}",
            serde_json::to_string(&report).expect("reports always serialize")
        )
    }

    /// Writes the final metrics snapshot line to stderr, at most once
    /// per server — called when a transport loop drains (`Shutdown` or
    /// EOF), so even a daemon killed right after the drain leaves
    /// evidence of what it served.
    pub fn flush_final_metrics(&self) {
        if !self.metrics_flushed.swap(true, Ordering::SeqCst) {
            eprintln!("af-serve: final {}", self.metrics_line());
        }
    }

    /// The response for a line that exceeded the cap (counted).
    fn oversized(&self) -> Response {
        self.registry.count_request();
        self.registry.reject(ErrorResponse::new(
            code::OVERSIZED,
            format!("request line exceeds the {}-byte cap", self.line_cap),
        ))
    }

    /// Serves newline-delimited JSON on stdin/stdout until EOF or a
    /// `Shutdown` request. Single-threaded: one request, one response,
    /// in order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the two streams.
    pub fn serve_stdio(&self, input: impl BufRead, mut output: impl Write) -> io::Result<()> {
        self.registry.metrics().connection_opened();
        let result = (|| {
            let mut lines = LineReader::new(input, self.line_cap);
            loop {
                let response = match lines.next_line()? {
                    LineRead::Eof => return Ok(()),
                    LineRead::Blank => continue,
                    LineRead::Oversized => self.oversized(),
                    LineRead::Line(line) => {
                        self.registry
                            .metrics()
                            .add_bytes_read(line.len() as u64 + 1);
                        self.handle_line(&line)
                    }
                };
                self.write_response(&mut output, &response)?;
                if self.is_shutting_down() {
                    return Ok(());
                }
            }
        })();
        self.flush_final_metrics();
        result
    }

    /// Writes one response line and counts its bytes.
    fn write_response(&self, output: &mut impl Write, response: &Response) -> io::Result<()> {
        let line = serialize(response);
        output.write_all(line.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        self.registry
            .metrics()
            .add_bytes_written(line.len() as u64 + 1);
        Ok(())
    }

    /// Serves newline-delimited JSON on a TCP listener, one thread per
    /// connection, until a `Shutdown` request on any connection. Returns
    /// after the drain: every connection thread has exited and every
    /// in-flight response has been written.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection I/O errors only
    /// end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let outcome = crossbeam::scope(|scope| -> io::Result<()> {
            while !self.is_shutting_down() {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        scope.spawn(move |_| {
                            // A dropped client is that client's problem.
                            let _ = self.serve_connection(stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        let result = outcome.expect("connection threads do not panic");
        self.flush_final_metrics();
        result
    }

    /// One connection's request/response loop.
    fn serve_connection(&self, stream: TcpStream) -> io::Result<()> {
        self.registry.metrics().connection_opened();
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut lines = LineReader::new(reader, self.line_cap);
        let mut stream = stream;
        loop {
            let response = match lines.next_line() {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Read timeout: no data right now. Keep waiting
                    // unless the server is draining.
                    if self.is_shutting_down() {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => return Err(e),
                Ok(LineRead::Eof) => return Ok(()),
                Ok(LineRead::Blank) => continue,
                Ok(LineRead::Oversized) => self.oversized(),
                Ok(LineRead::Line(line)) => {
                    self.registry
                        .metrics()
                        .add_bytes_read(line.len() as u64 + 1);
                    self.handle_line(&line)
                }
            };
            self.write_response(&mut stream, &response)?;
            if self.is_shutting_down() {
                // Either this client asked for shutdown (it just got its
                // `ShuttingDown` ack) or another did (this one just got
                // its final response); close the connection so the
                // accept loop's scope can drain.
                return Ok(());
            }
        }
    }
}

fn serialize(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

/// One read outcome from [`LineReader`].
enum LineRead {
    /// The stream ended cleanly.
    Eof,
    /// A whitespace-only line (ignored by both transports).
    Blank,
    /// One complete line within the cap.
    Line(String),
    /// A line exceeded the cap; its bytes were discarded through the
    /// next newline (or EOF) and the stream is positioned after it.
    Oversized,
}

/// A byte-capped, *resumable* line reader: if the underlying reader
/// returns a timeout error mid-line (TCP read timeouts, used to poll the
/// shutdown flag), the partial line is kept and the next call continues
/// it — `BufRead::read_line` would lose that property.
struct LineReader<R> {
    reader: R,
    cap: usize,
    buf: Vec<u8>,
    overflow: bool,
}

impl<R: BufRead> LineReader<R> {
    fn new(reader: R, cap: usize) -> Self {
        LineReader {
            reader,
            cap,
            buf: Vec::new(),
            overflow: false,
        }
    }

    fn next_line(&mut self) -> io::Result<LineRead> {
        loop {
            let available = self.reader.fill_buf()?;
            if available.is_empty() {
                // EOF. A partial unterminated line still gets answered.
                return Ok(if self.overflow {
                    self.overflow = false;
                    LineRead::Oversized
                } else if self.buf.is_empty() {
                    LineRead::Eof
                } else {
                    self.take_line()
                });
            }
            let (chunk, terminated, consumed) = match available.iter().position(|&b| b == b'\n') {
                Some(i) => (&available[..i], true, i + 1),
                None => (available, false, available.len()),
            };
            if !self.overflow {
                self.buf.extend_from_slice(chunk);
                if self.buf.len() > self.cap {
                    self.overflow = true;
                    self.buf.clear();
                }
            }
            self.reader.consume(consumed);
            if terminated {
                return Ok(if self.overflow {
                    self.overflow = false;
                    LineRead::Oversized
                } else {
                    self.take_line()
                });
            }
        }
    }

    fn take_line(&mut self) -> LineRead {
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        if line.trim().is_empty() {
            LineRead::Blank
        } else {
            LineRead::Line(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_analysis::GraphSpec;

    fn gen_line(name: &str, spec: &GraphSpec) -> String {
        serde_json::to_string(&Request::Gen {
            name: name.into(),
            spec: spec.clone(),
        })
        .unwrap()
    }

    #[test]
    fn malformed_lines_answer_with_errors_and_the_server_survives() {
        let server = Server::default();
        for garbage in [
            "not json at all",
            "{\"Load\": {\"name\": \"g\"",   // truncated
            "{\"Warp\": {}}",                // unknown verb
            "{\"Load\": {\"name\": \"g\"}}", // missing field
            "[1, 2, 3]",                     // wrong shape
            "\"Load\"",                      // payload verb as unit
        ] {
            let resp = server.handle_line(garbage);
            let Response::Error(err) = resp else {
                panic!("expected error for {garbage:?}, got {resp:?}");
            };
            assert_eq!(err.code, code::BAD_REQUEST, "{garbage:?}");
        }
        // The server still works after all that garbage.
        let resp = server.handle_line(&gen_line("g", &GraphSpec::Petersen));
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let Response::Stats(stats) = server.handle_line("\"Stats\"") else {
            panic!("stats");
        };
        assert_eq!(stats.errors, 6);
        assert_eq!(stats.requests, 8);
    }

    #[test]
    fn stdio_session_runs_and_shutdown_stops_it() {
        let server = Server::default();
        let input = format!(
            "{}\n{}\n\n\"Shutdown\"\n{}\n",
            gen_line("g", &GraphSpec::Cycle { n: 5 }),
            "{\"Predict\": {\"graph\": \"g\", \"source_sets\": [[0]]}}",
            "\"Stats\"", // never answered: the server stopped at Shutdown
        );
        let mut output = Vec::new();
        server.serve_stdio(input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with("{\"Registered\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"Predicted\""), "{}", lines[1]);
        assert_eq!(lines[2], "\"ShuttingDown\"");
        assert!(server.is_shutting_down());
        // Post-shutdown lines are refused, not executed.
        let Response::Error(err) = server.handle_line("\"Stats\"") else {
            panic!("expected shutting_down error");
        };
        assert_eq!(err.code, code::SHUTTING_DOWN);
    }

    #[test]
    fn oversized_lines_error_and_the_session_continues() {
        let server = Server::new(256);
        let big = format!(
            "{{\"Load\": {{\"name\": \"big\", \"graph\": \"{}\"}}}}",
            "x".repeat(512)
        );
        let input = format!("{big}\n{}\n", gen_line("g", &GraphSpec::Petersen));
        let mut output = Vec::new();
        server.serve_stdio(input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"oversized\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"Registered\""), "{}", lines[1]);
    }

    #[test]
    fn oversized_final_line_without_newline_still_answers() {
        let server = Server::new(16);
        let mut output = Vec::new();
        server
            .serve_stdio("x".repeat(64).as_bytes(), &mut output)
            .unwrap();
        let text = std::str::from_utf8(&output).unwrap();
        assert!(text.contains("\"oversized\""), "{text}");
    }

    #[test]
    fn line_reader_resumes_across_split_chunks() {
        // A reader that yields one byte per fill_buf models a slow
        // socket; the capped reader must reassemble the line.
        struct OneByte<'a>(&'a [u8]);
        impl io::Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                let n = usize::from(!self.0.is_empty() && !out.is_empty());
                if n == 1 {
                    out[0] = self.0[0];
                    self.0 = &self.0[1..];
                }
                Ok(n)
            }
        }
        let reader = BufReader::with_capacity(1, OneByte(b"\"Stats\"\nrest\n"));
        let mut lines = LineReader::new(reader, 64);
        let LineRead::Line(first) = lines.next_line().unwrap() else {
            panic!("line");
        };
        assert_eq!(first, "\"Stats\"");
        let LineRead::Line(second) = lines.next_line().unwrap() else {
            panic!("line");
        };
        assert_eq!(second, "rest");
        assert!(matches!(lines.next_line().unwrap(), LineRead::Eof));
    }
}
