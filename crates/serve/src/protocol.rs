//! The wire protocol: one JSON value per line, request in, response out.
//!
//! Every request line deserializes to a [`Request`] and every response
//! line serializes from a [`Response`], both in serde's externally-tagged
//! form — a one-entry object keyed by the verb (`{"Load": {...}}`), or a
//! bare string for the verbs that carry no payload (`"Stats"`,
//! `"Shutdown"`). This is the same representation every other serialized
//! enum in the workspace uses (`GraphSpec` in the benchmark JSON, for
//! one), so a recorded `spec` pastes straight into a `Gen` request.
//!
//! The flood payload is [`af_core::api::FloodRequest`] — the exact struct
//! the CLI and the benchmark harness execute — and failures are
//! [`af_core::api::ErrorResponse`] values with stable codes from
//! [`af_core::api::code`]. PROTOCOL.md documents every verb, field, and
//! code; `tests/doc_links.rs` keeps that file reachable from the README.

use af_analysis::bench::EngineStats;
use af_analysis::GraphSpec;
use af_core::api::{ErrorResponse, FloodRequest, FloodResponse};
use af_core::theory::PredictSummary;
use af_graph::dynamic::GraphDelta;
use serde::{Deserialize, Serialize};

/// An id-correlated request line: `{"id": N, "request": <Request>}`.
///
/// A bare [`Request`] line keeps strict in-order semantics on its
/// connection. Wrapping it in an envelope opts that request into the
/// worker pool: the response comes back as a [`TaggedResponse`] echoing
/// `id`, possibly out of order relative to other enveloped requests on
/// the same connection. Clients pick ids; the server never interprets
/// them beyond echoing (duplicates are legal and echoed as sent). The
/// two line shapes cannot collide: a request enum line is a bare string
/// or a one-entry object, an envelope is a two-entry object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The wrapped request, executed exactly as its bare form would be.
    pub request: Request,
}

/// The response line for an [`Envelope`]: `{"id": N, "response": ...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedResponse {
    /// The id of the envelope this answers.
    pub id: u64,
    /// The response, exactly what the bare request would have answered.
    pub response: Response,
}

/// One client request: the verb and its payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register (or replace) a graph under `name` from graph text —
    /// edge-list format (`n <count>` header + `u v` lines) or graph6.
    Load {
        /// Registry name; reusing a name replaces the previous graph.
        name: String,
        /// The graph text, both formats auto-detected.
        graph: String,
    },
    /// Register (or replace) a graph under `name` built from a
    /// [`GraphSpec`] — the same serialized spec the benchmark records,
    /// so any `BENCH_flooding.json` case is loadable verbatim.
    Gen {
        /// Registry name; reusing a name replaces the previous graph.
        name: String,
        /// The generator instance to build.
        spec: GraphSpec,
    },
    /// Exact-time oracle predictions for source sets on a registered
    /// graph — answered from the cached per-graph double-cover index
    /// (built lazily on the first `Predict`, reused until a `Mutate`).
    Predict {
        /// The registered graph to query.
        graph: String,
        /// One prediction per set of source node ids.
        source_sets: Vec<Vec<usize>>,
    },
    /// Run one flood on a registered graph: a single source set on the
    /// chosen engine. Sugar for a one-set [`Request::Batch`].
    Flood {
        /// The registered graph to flood.
        graph: String,
        /// The flood's source node ids.
        sources: Vec<usize>,
        /// Canonical engine string (empty = default engine).
        engine: String,
        /// Per-flood round cap (`0` = the default `2n + 2`).
        max_rounds: u32,
    },
    /// Run a batch of floods on a registered graph — the full
    /// [`FloodRequest`] surface: many source sets, any engine
    /// (bitlane-chunked 64 sets per pass), a round cap.
    Batch {
        /// The registered graph to flood.
        graph: String,
        /// The workload, exactly as the CLI and benchmark execute it.
        request: FloodRequest,
    },
    /// Measure a [`FloodRequest`] on a registered graph through the
    /// committed benchmark harness
    /// ([`af_analysis::bench::measure_request`]) and return the
    /// [`EngineStats`] rows — so the daemon can self-record
    /// `BENCH_serve.json` sections under live concurrent load.
    Bench {
        /// The registered graph to measure on.
        graph: String,
        /// The workload to measure (`max_rounds` must be 0: bench rows
        /// are always measured uncapped).
        request: FloodRequest,
        /// How many times to measure the request (≥ 1); one
        /// [`EngineStats`] row per repeat, in run order.
        repeat: u32,
    },
    /// Apply topology edits to a registered graph, in batch order. The
    /// graph's node-id space evolves exactly as
    /// [`af_graph::dynamic::DeltaGraph::apply`] documents (departed ids
    /// retire, joins append); the cached predict index is invalidated.
    Mutate {
        /// The registered graph to edit.
        graph: String,
        /// Edit batches, applied atomically one after another.
        deltas: Vec<GraphDelta>,
    },
    /// Explicitly remove a registered graph (and its cached predict
    /// index) from the registry, freeing its budget charge. Later
    /// requests for the name answer the stable `not_found` code until a
    /// re-`Load`/`Gen`.
    Evict {
        /// The registered graph to remove.
        graph: String,
    },
    /// Server and registry counters. No payload: the wire form is the
    /// bare string `"Stats"`.
    Stats,
    /// Full daemon metrics: per-verb latency histograms, transport
    /// counters, registry footprint gauges. No payload: the wire form
    /// is the bare string `"Metrics"`.
    Metrics,
    /// Drain in-flight requests, then stop the server. No payload: the
    /// wire form is the bare string `"Shutdown"`.
    Shutdown,
}

/// One server response: the outcome keyed by what happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A `Load`/`Gen` succeeded: the registered graph's shape.
    Registered {
        /// The name the graph is registered under.
        name: String,
        /// Node count of the registered graph.
        nodes: usize,
        /// Edge count of the registered graph.
        edges: usize,
    },
    /// A `Predict` succeeded: one summary per requested source set, in
    /// order.
    Predicted {
        /// Termination round, total messages, informed count — per set.
        predictions: Vec<PredictSummary>,
    },
    /// A `Flood` or `Batch` succeeded: the engine that ran (canonical
    /// string, defaults resolved) and one summary per source set.
    Flooded(FloodResponse),
    /// A `Bench` succeeded: one measured [`EngineStats`] row per
    /// requested repeat, in run order — the exact rows
    /// `BENCH_flooding.json` would record for the same request.
    Benched {
        /// The measured graph's name.
        graph: String,
        /// Node count of the measured snapshot.
        nodes: usize,
        /// Edge count of the measured snapshot.
        edges: usize,
        /// One benchmark row per repeat.
        runs: Vec<EngineStats>,
    },
    /// An `Evict` succeeded: what was removed.
    Evicted {
        /// The evicted graph's name.
        name: String,
        /// Approximate bytes released (graph snapshot plus any cached
        /// predict index), as charged against the registry budget.
        bytes_freed: u64,
        /// Whether a cached predict index was dropped along with the
        /// graph.
        index_dropped: bool,
    },
    /// A `Mutate` succeeded: what the batches did and the graph's new
    /// shape.
    Mutated {
        /// The mutated graph's name.
        name: String,
        /// Node count after all batches (departed ids still count —
        /// ids are never reused).
        nodes: usize,
        /// Edge count after all batches.
        edges: usize,
        /// Total edits applied across all batches.
        edits_applied: usize,
        /// Total requested edits skipped as invalid (see
        /// [`af_graph::dynamic::AppliedDelta::edits_skipped`]).
        edits_skipped: usize,
    },
    /// A `Stats` succeeded.
    Stats(ServerStats),
    /// A `Metrics` succeeded.
    Metrics(MetricsReport),
    /// Acknowledges a `Shutdown`: the server stops accepting new work
    /// and exits once in-flight requests drain.
    ShuttingDown,
    /// The request failed; `code` is stable, `message` is diagnostic.
    Error(ErrorResponse),
}

/// Registry-wide counters returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests answered so far (this one included), errors included.
    pub requests: u64,
    /// How many of those answered with [`Response::Error`].
    pub errors: u64,
    /// Whole seconds since the daemon's registry came up.
    pub uptime_secs: u64,
    /// Same total as `requests`, under the name the `Metrics` report
    /// uses — `requests` predates the metrics layer and is kept for
    /// wire compatibility.
    pub requests_total: u64,
    /// Parsed requests answered per verb, in wire-documentation order
    /// (unparsable lines count only in `errors`).
    pub verbs: Vec<VerbCount>,
    /// Every registered graph, in name order.
    pub graphs: Vec<GraphInfo>,
}

/// One verb's request count in [`ServerStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerbCount {
    /// The verb's wire name (`"Load"`, `"Predict"`, ...).
    pub verb: String,
    /// Requests answered under that verb (errors included).
    pub count: u64,
}

/// The full daemon metrics snapshot returned by [`Request::Metrics`]
/// and flushed to stderr as the final line when the daemon drains.
///
/// Latency quantiles are upper bounds of power-of-two buckets (within
/// 2× of the true value); `max_us` is exact. The footprint gauges are
/// maintained eagerly by every register / index build / mutate / evict,
/// so a report is a pure read — it never walks the registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Whole seconds since the daemon's registry came up.
    pub uptime_secs: u64,
    /// Requests answered so far, errors and unparsable lines included.
    pub requests_total: u64,
    /// How many answered with [`Response::Error`].
    pub errors_total: u64,
    /// Transport sessions opened (a stdio session counts as one).
    pub connections: u64,
    /// Request-line bytes consumed, newlines included.
    pub bytes_read: u64,
    /// Response-line bytes written, newlines included.
    pub bytes_written: u64,
    /// Approximate resident bytes of all registered graph snapshots
    /// *and* their cached predict indexes — the charge the byte budget
    /// compares against, maintained eagerly on every register / index
    /// build / mutate / evict.
    pub registry_bytes: u64,
    /// Graphs currently holding a built double-cover predict index.
    pub predict_indexes: u64,
    /// The registry byte budget (`--registry-budget`); 0 = unbounded.
    pub registry_budget_bytes: u64,
    /// Graphs evicted over the daemon's lifetime (LRU and explicit
    /// `Evict` both count).
    pub evictions_total: u64,
    /// Worker threads in the shared pool (`--pool`).
    pub pool_workers: u64,
    /// Enveloped requests currently queued or executing on the pool.
    pub pool_depth: u64,
    /// Enveloped requests ever dispatched to the pool.
    pub pool_jobs_total: u64,
    /// Per-verb counts and latency, in wire-documentation order.
    pub verbs: Vec<VerbStat>,
}

/// One verb's count and latency row in [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerbStat {
    /// The verb's wire name.
    pub verb: String,
    /// Requests answered under that verb (errors included).
    pub count: u64,
    /// Median latency, µs (bucket upper bound; 0 when unused).
    pub p50_us: u64,
    /// 90th-percentile latency, µs (bucket upper bound).
    pub p90_us: u64,
    /// 99th-percentile latency, µs (bucket upper bound).
    pub p99_us: u64,
    /// Largest observed latency, µs (exact).
    pub max_us: u64,
}

/// One registered graph's row in [`ServerStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphInfo {
    /// Registry name.
    pub name: String,
    /// Current node count.
    pub nodes: usize,
    /// Current edge count.
    pub edges: usize,
    /// Whether the double-cover predict index is currently built (it
    /// appears on the first `Predict` and disappears on `Mutate`).
    pub indexed: bool,
    /// `Mutate` batches applied over the graph's lifetime.
    pub mutations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_as_json() {
        let requests = vec![
            Request::Load {
                name: "g".into(),
                graph: "n 2\n0 1\n".into(),
            },
            Request::Gen {
                name: "grid".into(),
                spec: GraphSpec::Grid { rows: 3, cols: 4 },
            },
            Request::Predict {
                graph: "g".into(),
                source_sets: vec![vec![0], vec![0, 1]],
            },
            Request::Flood {
                graph: "g".into(),
                sources: vec![0],
                engine: String::new(),
                max_rounds: 0,
            },
            Request::Batch {
                graph: "g".into(),
                request: FloodRequest::single(vec![1]),
            },
            Request::Bench {
                graph: "g".into(),
                request: FloodRequest::single(vec![0]),
                repeat: 3,
            },
            Request::Mutate {
                graph: "g".into(),
                deltas: vec![GraphDelta {
                    insert_edges: vec![(0, 1)],
                    ..GraphDelta::default()
                }],
            },
            Request::Evict { graph: "g".into() },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in requests {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req, "{line}");
            // The same request inside an envelope: round-trips with its
            // id, and the envelope line never parses as a bare request
            // (the two shapes are disjoint).
            let env = Envelope {
                id: 42,
                request: req,
            };
            let line = serde_json::to_string(&env).unwrap();
            let back: Envelope = serde_json::from_str(&line).unwrap();
            assert_eq!(back, env, "{line}");
            assert!(
                serde_json::from_str::<Request>(&line).is_err(),
                "envelope must not parse as a bare request: {line}"
            );
        }
    }

    #[test]
    fn payload_free_verbs_are_bare_strings() {
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
        assert_eq!(
            serde_json::to_string(&Request::Metrics).unwrap(),
            "\"Metrics\""
        );
        assert_eq!(
            serde_json::to_string(&Request::Shutdown).unwrap(),
            "\"Shutdown\""
        );
        assert_eq!(
            serde_json::to_string(&Response::ShuttingDown).unwrap(),
            "\"ShuttingDown\""
        );
    }

    #[test]
    fn responses_roundtrip_as_json() {
        let responses = vec![
            Response::Registered {
                name: "g".into(),
                nodes: 10,
                edges: 15,
            },
            Response::Predicted {
                predictions: vec![PredictSummary {
                    termination_round: 5,
                    total_messages: 30,
                    informed_count: 10,
                }],
            },
            Response::Mutated {
                name: "g".into(),
                nodes: 11,
                edges: 14,
                edits_applied: 3,
                edits_skipped: 1,
            },
            Response::Stats(ServerStats {
                requests: 7,
                errors: 1,
                uptime_secs: 12,
                requests_total: 7,
                verbs: vec![VerbCount {
                    verb: "Predict".into(),
                    count: 4,
                }],
                graphs: vec![GraphInfo {
                    name: "g".into(),
                    nodes: 10,
                    edges: 15,
                    indexed: true,
                    mutations: 2,
                }],
            }),
            Response::Evicted {
                name: "g".into(),
                bytes_freed: 4096,
                index_dropped: true,
            },
            Response::Metrics(MetricsReport {
                uptime_secs: 12,
                requests_total: 7,
                errors_total: 1,
                connections: 2,
                bytes_read: 900,
                bytes_written: 1800,
                registry_bytes: 4096,
                predict_indexes: 1,
                registry_budget_bytes: 1 << 20,
                evictions_total: 2,
                pool_workers: 4,
                pool_depth: 1,
                pool_jobs_total: 9,
                verbs: vec![VerbStat {
                    verb: "Predict".into(),
                    count: 4,
                    p50_us: 127,
                    p90_us: 255,
                    p99_us: 255,
                    max_us: 201,
                }],
            }),
            Response::ShuttingDown,
            Response::Error(ErrorResponse::new(
                af_core::api::code::UNKNOWN_GRAPH,
                "no graph named 'g'",
            )),
        ];
        for resp in responses {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp, "{line}");
            let tagged = TaggedResponse {
                id: 7,
                response: resp,
            };
            let line = serde_json::to_string(&tagged).unwrap();
            let back: TaggedResponse = serde_json::from_str(&line).unwrap();
            assert_eq!(back, tagged, "{line}");
        }
    }

    #[test]
    fn benched_roundtrips_with_real_measured_rows() {
        // A real measured row, not a hand-built literal, so the response
        // carries exactly what `measure_request` produces (f64 fields
        // included).
        let g = af_graph::generators::petersen();
        let row = af_analysis::bench::measure_request(&g, &FloodRequest::single(vec![0])).unwrap();
        let resp = Response::Benched {
            graph: "g".into(),
            nodes: 10,
            edges: 15,
            runs: vec![row],
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        let Response::Benched { runs, .. } = back else {
            panic!("expected Benched, got {back:?}");
        };
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "frontier");
        assert_eq!(runs[0].floods_terminated, 1);
    }
}
