//! The concurrency and fault-injection battery for the pooled serve
//! layer.
//!
//! Concurrency: N concurrent TCP clients fire *pipelined* id-enveloped
//! requests (mixed Flood/Batch/Predict/Mutate) without waiting for
//! responses; the pool answers out of order, and every response must
//! (a) correlate to its request id and (b) be byte-identical to
//! serializing the in-process answer — across pool sizes {1, 2, 8}, so
//! neither a serialized pool nor a wide one changes a single byte.
//!
//! Faults: a client that vanishes mid-pipeline with Batch work queued, a
//! connection that sends an oversized line and then a valid one, and a
//! `Shutdown` racing queued pool work. The daemon must drain cleanly,
//! keep serving everyone else, and keep its metrics balanced
//! (`requests_total` == the sum of per-verb counts) through all of it.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};

use af_analysis::GraphSpec;
use af_core::api::{code, FloodRequest};
use af_graph::dynamic::GraphDelta;
use af_serve::{Envelope, Registry, Request, Response, Server, ServerConfig, TaggedResponse};

/// An NDJSON client that can pipeline: writes and reads are separate,
/// so many requests can be in flight at once.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send_line(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        self.stream.flush().expect("flush");
    }

    fn send(&mut self, request: &Request) {
        self.send_line(&serde_json::to_string(request).expect("serialize"));
    }

    fn send_tagged(&mut self, id: u64, request: &Request) {
        let envelope = Envelope {
            id,
            request: request.clone(),
        };
        self.send_line(&serde_json::to_string(&envelope).expect("serialize"));
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_owned()
    }

    /// One request, one response — the in-order bare path.
    fn roundtrip(&mut self, request: &Request) -> String {
        self.send(request);
        self.read_line()
    }

    /// One raw line out, one line in.
    fn roundtrip_raw(&mut self, line: &str) -> String {
        self.send_line(line);
        self.read_line()
    }
}

/// The id of a tagged line, without touching the response payload (so
/// byte-identity checks compare raw lines, not re-serialized parses).
fn tag_of(line: &str) -> u64 {
    #[derive(serde::Deserialize)]
    struct Tag {
        id: u64,
    }
    let tag: Tag = serde_json::from_str(line).unwrap_or_else(|e| panic!("untagged {line:?}: {e}"));
    tag.id
}

/// The wire line the daemon must produce for envelope `id` carrying
/// `request`, per the in-process reference registry.
fn expected_line(reference: &Registry, id: u64, request: &Request) -> String {
    let tagged = TaggedResponse {
        id,
        response: reference.execute(request),
    };
    serde_json::to_string(&tagged).expect("serialize")
}

/// The read-only request mix one burst fires at a graph: floods on
/// different engines, batches, predictions — everything safe to answer
/// in any order.
fn read_only_mix(graph: &str) -> Vec<Request> {
    vec![
        Request::Predict {
            graph: graph.into(),
            source_sets: vec![vec![0], vec![1, 2]],
        },
        Request::Flood {
            graph: graph.into(),
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        },
        Request::Flood {
            graph: graph.into(),
            sources: vec![1],
            engine: "fast".into(),
            max_rounds: 0,
        },
        Request::Batch {
            graph: graph.into(),
            request: FloodRequest {
                source_sets: vec![vec![0], vec![1], vec![0, 2]],
                engine: "bitlane".into(),
                max_rounds: 0,
            },
        },
        Request::Batch {
            graph: graph.into(),
            request: FloodRequest {
                source_sets: vec![vec![2]],
                engine: "sharded:2:bfs".into(),
                max_rounds: 0,
            },
        },
        Request::Predict {
            graph: graph.into(),
            source_sets: vec![vec![3]],
        },
    ]
}

/// Sends `requests` as one pipelined envelope burst with ids starting
/// at `base`, reads all the out-of-order answers, and asserts each one
/// is byte-identical to the reference registry's answer.
fn pipelined_burst(client: &mut Client, reference: &Registry, base: u64, requests: &[Request]) {
    let mut expected = BTreeMap::new();
    for (i, request) in requests.iter().enumerate() {
        let id = base + i as u64;
        expected.insert(id, expected_line(reference, id, request));
        client.send_tagged(id, request);
    }
    for _ in 0..requests.len() {
        let line = client.read_line();
        let id = tag_of(&line);
        let want = expected
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown or duplicate id {id} in {line:?}"));
        assert_eq!(line, want, "id {id} diverged from the in-process answer");
    }
    assert!(expected.is_empty(), "unanswered ids: {expected:?}");
}

/// Tentpole: out-of-order correlation is exact and byte-identical under
/// every pool size, with barriers only where mutation demands them.
#[test]
fn pipelined_out_of_order_clients_match_in_process_execution() {
    for pool in [1usize, 2, 8] {
        let server = Server::with_config(&ServerConfig {
            pool,
            ..ServerConfig::default()
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");

        std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve_tcp(&listener));

            let specs = [
                GraphSpec::Grid { rows: 9, cols: 11 },
                GraphSpec::Cycle { n: 120 },
                GraphSpec::Lollipop { k: 7, p: 20 },
                GraphSpec::SparseConnected {
                    n: 90,
                    extra: 40,
                    seed: 7,
                },
            ];
            let clients: Vec<_> = specs
                .into_iter()
                .enumerate()
                .map(|(i, spec)| {
                    scope.spawn(move || {
                        let graph = format!("g{i}");
                        let reference = Registry::new();
                        let mut client = Client::connect(addr);

                        // Barrier 1: the graph must exist before any
                        // pipelined work can race it. Bare = inline.
                        let gen = Request::Gen {
                            name: graph.clone(),
                            spec,
                        };
                        let line = client.roundtrip(&gen);
                        assert_eq!(
                            line,
                            serde_json::to_string(&reference.execute(&gen)).unwrap()
                        );

                        // Burst 1: read-only mix, any order is legal.
                        pipelined_burst(&mut client, &reference, 100, &read_only_mix(&graph));

                        // Barrier 2: a mutation must not race the reads
                        // above (we drained them) or below (we wait for
                        // its tagged ack). Enveloped Mutate still runs
                        // on the pool.
                        let mutate = Request::Mutate {
                            graph: graph.clone(),
                            deltas: vec![GraphDelta {
                                insert_edges: vec![(0, 3)],
                                ..GraphDelta::default()
                            }],
                        };
                        pipelined_burst(
                            &mut client,
                            &reference,
                            200,
                            std::slice::from_ref(&mutate),
                        );

                        // Burst 2: the same mix against the mutated
                        // graph — the pool answers from the new
                        // snapshot, byte-for-byte.
                        pipelined_burst(&mut client, &reference, 300, &read_only_mix(&graph));
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client");
            }

            let mut closer = Client::connect(addr);
            assert_eq!(closer.roundtrip(&Request::Shutdown), "\"ShuttingDown\"");
            serving.join().expect("server thread").expect("serve_tcp");
        });

        // Metrics balance survives the whole battery: every parsed
        // request landed on exactly one verb row, and the pool drained.
        let report = server.registry().metrics_report();
        assert_eq!(report.pool_workers, pool as u64);
        assert_eq!(report.pool_depth, 0, "pool {pool}: jobs drained");
        assert_eq!(
            report.pool_jobs_total,
            4 * 13,
            "pool {pool}: 13 enveloped requests per client"
        );
        let verb_sum: u64 = report.verbs.iter().map(|v| v.count).sum();
        assert_eq!(report.requests_total, verb_sum, "pool {pool}");
        assert_eq!(report.errors_total, 0, "pool {pool}");
    }
}

/// Fault: a client hangs up with pipelined Batch work still queued. The
/// workers' writes to the dead socket fail; nothing else may notice.
#[test]
fn mid_batch_disconnect_never_kills_the_daemon() {
    let server = Server::with_config(&ServerConfig {
        pool: 2,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));

        // The deserter: registers a real graph, pipelines heavy batches,
        // and vanishes without reading a single response.
        let mut deserter = Client::connect(addr);
        let gen = Request::Gen {
            name: "doomed".into(),
            spec: GraphSpec::Grid { rows: 40, cols: 40 },
        };
        let line = deserter.roundtrip(&gen);
        assert!(line.starts_with("{\"Registered\""), "{line}");
        for id in 0..6u64 {
            deserter.send_tagged(
                id,
                &Request::Batch {
                    graph: "doomed".into(),
                    request: FloodRequest {
                        source_sets: vec![vec![0], vec![17], vec![300]],
                        engine: String::new(),
                        max_rounds: 0,
                    },
                },
            );
        }
        deserter
            .stream
            .shutdown(SocketShutdown::Both)
            .expect("shutdown socket");
        drop(deserter);

        // A well-behaved client on another connection is undisturbed,
        // before, during, and after the deserter's jobs die on the wire.
        let reference = Registry::new();
        let mut survivor = Client::connect(addr);
        let gen = Request::Gen {
            name: "alive".into(),
            spec: GraphSpec::Cycle { n: 64 },
        };
        let line = survivor.roundtrip(&gen);
        assert_eq!(
            line,
            serde_json::to_string(&reference.execute(&gen)).unwrap()
        );
        pipelined_burst(&mut survivor, &reference, 500, &read_only_mix("alive"));

        // Wait out the deserter's queue: depth returns to zero because
        // a failed write still finishes the job.
        let mut tries = 0;
        while server.registry().metrics_report().pool_depth > 0 {
            tries += 1;
            assert!(tries < 200, "pool never drained the deserter's jobs");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        assert_eq!(survivor.roundtrip(&Request::Shutdown), "\"ShuttingDown\"");
        serving.join().expect("server thread").expect("serve_tcp");
    });

    let report = server.registry().metrics_report();
    assert_eq!(report.pool_jobs_total, 6 + 6, "deserter's 6 + survivor's 6");
    assert_eq!(report.pool_depth, 0);
    let verb_sum: u64 = report.verbs.iter().map(|v| v.count).sum();
    assert_eq!(report.requests_total, verb_sum, "metrics stay balanced");
    assert_eq!(
        report.errors_total, 0,
        "a dead socket is not a request error"
    );
}

/// Fault: an oversized line answers with a structured error and the
/// *same* connection keeps working — including enveloped requests.
#[test]
fn oversized_then_valid_line_keeps_the_connection() {
    let server = Server::with_config(&ServerConfig {
        line_cap: 1024,
        pool: 2,
        registry_budget: 0,
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));
        let reference = Registry::new();
        let mut client = Client::connect(addr);

        let gen = Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Petersen,
        };
        let line = client.roundtrip(&gen);
        assert_eq!(
            line,
            serde_json::to_string(&reference.execute(&gen)).unwrap()
        );

        // Oversized (2 KiB against a 1 KiB cap), then valid, twice over.
        for _ in 0..2 {
            let line = client.roundtrip_raw(&"x".repeat(2048));
            let resp: Response = serde_json::from_str(&line).expect("parse");
            let Response::Error(err) = resp else {
                panic!("expected oversized error, got {resp:?}");
            };
            assert_eq!(err.code, code::OVERSIZED);
            pipelined_burst(&mut client, &reference, 700, &read_only_mix("g"));
        }

        assert_eq!(client.roundtrip(&Request::Shutdown), "\"ShuttingDown\"");
        serving.join().expect("server thread").expect("serve_tcp");
    });

    let report = server.registry().metrics_report();
    assert_eq!(report.errors_total, 2, "exactly the two oversized lines");
    let verb_sum: u64 = report.verbs.iter().map(|v| v.count).sum();
    assert_eq!(report.requests_total, verb_sum);
}

/// Fault: `Shutdown` lands while the (single-worker) pool still holds
/// queued jobs. Every accepted job must still answer before `serve_tcp`
/// returns — drain means drain.
#[test]
fn shutdown_with_queued_pool_work_drains_every_response() {
    let server = Server::with_config(&ServerConfig {
        pool: 1,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));
        let reference = Registry::new();
        let mut client = Client::connect(addr);

        let gen = Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Grid { rows: 30, cols: 30 },
        };
        let line = client.roundtrip(&gen);
        assert_eq!(
            line,
            serde_json::to_string(&reference.execute(&gen)).unwrap()
        );

        // Pipeline K heavy jobs at the single worker, then Shutdown on
        // the same connection without reading anything: the ack executes
        // inline, so it overtakes the queue.
        let batch = Request::Batch {
            graph: "g".into(),
            request: FloodRequest {
                source_sets: vec![vec![0], vec![450], vec![899]],
                engine: String::new(),
                max_rounds: 0,
            },
        };
        let mut expected = BTreeMap::new();
        for id in 0..5u64 {
            expected.insert(id, expected_line(&reference, id, &batch));
            client.send_tagged(id, &batch);
        }
        client.send(&Request::Shutdown);

        // Exactly 6 lines come back — the ack plus all 5 tagged
        // responses — then EOF as the daemon finishes its drain.
        let mut saw_ack = false;
        for _ in 0..6 {
            let line = client.read_line();
            if line == "\"ShuttingDown\"" {
                assert!(!saw_ack, "one ack only");
                saw_ack = true;
                continue;
            }
            let id = tag_of(&line);
            let want = expected
                .remove(&id)
                .unwrap_or_else(|| panic!("unknown or duplicate id {id}"));
            assert_eq!(line, want, "queued job {id} answered after shutdown");
        }
        assert!(saw_ack, "shutdown was acknowledged");
        assert!(expected.is_empty(), "lost queued jobs: {expected:?}");
        let mut rest = String::new();
        let n = client.reader.read_line(&mut rest).expect("read");
        assert_eq!(n, 0, "expected EOF after the drain, got {rest:?}");

        serving.join().expect("server thread").expect("serve_tcp");
    });

    let report = server.registry().metrics_report();
    assert_eq!(report.pool_jobs_total, 5);
    assert_eq!(report.pool_depth, 0, "every queued job was finished");
    let verb_sum: u64 = report.verbs.iter().map(|v| v.count).sum();
    assert_eq!(report.requests_total, verb_sum);
}
