//! Property battery for the byte-budget LRU registry: under *any*
//! interleaving of Load/Gen/Flood/Predict/Evict against a budgeted
//! registry,
//!
//! 1. the resident-bytes gauge never exceeds the budget after any op
//!    (eviction is part of the op that overflows, not a lazy sweep);
//! 2. a registered-then-evicted name answers the stable `not_found`
//!    code, while a never-registered name answers `unknown_graph`;
//! 3. evicting everything returns the gauge to exactly zero — every
//!    charge taken is a charge released, so the accounting cannot
//!    drift over a long-lived daemon's life; and
//! 4. re-registering an evicted name rebuilds its predict index from
//!    scratch, answering bit-identically to a fresh registry.
//!
//! The ops run through `Registry::execute`, the same entry point the
//! wire uses, so these properties are wire properties.

use std::collections::BTreeSet;

use af_analysis::GraphSpec;
use af_core::api::code;
use af_serve::registry::{approx_graph_bytes, approx_index_bytes};
use af_serve::{Registry, Request, Response};
use proptest::prelude::*;

/// The fixed name pool: `g0..g5`, each with its own generated shape, so
/// an op `(verb, name)` is two small integers.
const NAME_COUNT: usize = 6;

fn spec(i: usize) -> GraphSpec {
    GraphSpec::Cycle { n: 8 + 6 * i }
}

fn name(i: usize) -> String {
    format!("g{i}")
}

/// `Load` always carries this tiny triangle, so the text path and the
/// generator path mix in one interleaving.
const TRIANGLE: &str = "n 3\n0 1\n1 2\n2 0\n";

/// A budget that fits about three of the largest graphs with their
/// indexes: big enough that every single admission succeeds, small
/// enough that interleavings actually evict.
fn budget() -> u64 {
    let largest = spec(NAME_COUNT - 1).build();
    3 * (approx_graph_bytes(&largest) + approx_index_bytes(&largest))
}

/// Names currently registered, straight from the public stats walk.
fn present(registry: &Registry) -> BTreeSet<String> {
    let Response::Stats(stats) = registry.execute(&Request::Stats) else {
        panic!("stats");
    };
    stats.graphs.into_iter().map(|g| g.name).collect()
}

fn decode(verb: usize, target: usize) -> Request {
    let graph = name(target);
    match verb {
        0 => Request::Gen {
            name: graph,
            spec: spec(target),
        },
        1 => Request::Load {
            name: graph,
            graph: TRIANGLE.into(),
        },
        2 => Request::Flood {
            graph,
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        },
        3 => Request::Predict {
            graph,
            source_sets: vec![vec![0]],
        },
        4 => Request::Evict { graph },
        _ => unreachable!("verb range is 0..=4"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn budget_holds_under_any_interleaving(
        ops in proptest::collection::vec((0..=4usize, 0..NAME_COUNT), 0..60)
    ) {
        let budget = budget();
        let registry = Registry::with_budget(budget);
        let mut ever: BTreeSet<String> = BTreeSet::new();

        for (verb, target) in ops {
            let request = decode(verb, target);
            let graph = name(target);
            let was_present = present(&registry).contains(&graph);
            let was_ever = ever.contains(&graph);
            let response = registry.execute(&request);

            // Property 2: the right answer shape for each (op, state).
            match (verb, was_present) {
                (0 | 1, _) => {
                    prop_assert!(
                        matches!(response, Response::Registered { .. }),
                        "single graphs always fit the budget: {response:?}"
                    );
                    ever.insert(graph.clone());
                }
                (2, true) => prop_assert!(
                    matches!(response, Response::Flooded(_)),
                    "flood on present graph"
                ),
                (3, true) => prop_assert!(
                    matches!(response, Response::Predicted { .. }),
                    "predict on present graph"
                ),
                (4, true) => prop_assert!(
                    matches!(response, Response::Evicted { .. }),
                    "evict on present graph"
                ),
                (_, false) => {
                    let Response::Error(err) = response else {
                        panic!("expected an error on absent '{graph}'");
                    };
                    let want = if was_ever { code::NOT_FOUND } else { code::UNKNOWN_GRAPH };
                    prop_assert_eq!(&err.code, want, "absent '{}' (ever={})", graph, was_ever);
                }
                _ => unreachable!(),
            }

            // Property 1: never over budget, not even transiently
            // observable between ops.
            let resident = registry.metrics().registry_bytes();
            prop_assert!(
                resident <= budget,
                "resident {resident} exceeds budget {budget} after verb {verb} on {graph}"
            );
        }

        // Property 3: evicting the survivors returns the gauge to zero —
        // and each `bytes_freed` matches the recomputed footprint of the
        // snapshot it releases.
        for graph in present(&registry) {
            let before = registry.metrics().registry_bytes();
            let response = registry.execute(&Request::Evict { graph: graph.clone() });
            let Response::Evicted { bytes_freed, .. } = response else {
                panic!("evicting present '{graph}' failed: {response:?}");
            };
            prop_assert_eq!(registry.metrics().registry_bytes(), before - bytes_freed);
        }
        prop_assert_eq!(registry.metrics().registry_bytes(), 0, "all charges released");
        prop_assert_eq!(registry.metrics_report().predict_indexes, 0, "all indexes released");

        // Property 4: a name that lived and died re-registers cleanly
        // and its rebuilt predict index answers exactly like a fresh
        // unbounded registry's.
        if let Some(graph) = ever.first().cloned() {
            let probe = Request::Predict {
                graph: graph.clone(),
                source_sets: vec![vec![0], vec![1, 2]],
            };
            let gen = Request::Gen {
                name: graph.clone(),
                spec: GraphSpec::Petersen,
            };
            let reference = Registry::new();
            reference.execute(&gen);
            registry.execute(&gen);
            prop_assert_eq!(
                serde_json::to_string(&registry.execute(&probe)).unwrap(),
                serde_json::to_string(&reference.execute(&probe)).unwrap(),
                "rebuilt index diverged for '{}'", graph
            );
        }
    }
}
