//! End-to-end TCP: a real daemon on a loopback socket, concurrent
//! clients, and the tentpole guarantee — every byte a client reads back
//! is **bit-identical** to serializing the in-process answer, because
//! the wire adds no third execution semantics on top of
//! `FloodRequest::execute` and the registry.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use af_analysis::GraphSpec;
use af_core::api::{code, FloodRequest};
use af_graph::dynamic::GraphDelta;
use af_serve::{Registry, Request, Response, Server};

/// A blocking NDJSON client: one request line out, one response line in.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send_raw(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        self.stream.flush().expect("flush");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read");
        assert!(n > 0, "server closed the connection after {line:?}");
        response.trim_end().to_owned()
    }

    fn send(&mut self, request: &Request) -> String {
        self.send_raw(&serde_json::to_string(request).expect("serialize"))
    }
}

/// One client's scripted session: register a private graph, predict,
/// flood on several engines, mutate, and predict again.
fn script(name: &str, spec: GraphSpec) -> Vec<Request> {
    vec![
        Request::Gen {
            name: name.into(),
            spec,
        },
        Request::Predict {
            graph: name.into(),
            source_sets: vec![vec![0], vec![0, 1]],
        },
        Request::Flood {
            graph: name.into(),
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        },
        Request::Batch {
            graph: name.into(),
            request: FloodRequest {
                source_sets: vec![vec![0], vec![1], vec![0, 2]],
                engine: "bitlane".into(),
                max_rounds: 0,
            },
        },
        Request::Mutate {
            graph: name.into(),
            deltas: vec![GraphDelta {
                insert_edges: vec![(0, 2)],
                ..GraphDelta::default()
            }],
        },
        Request::Predict {
            graph: name.into(),
            source_sets: vec![vec![0]],
        },
        Request::Batch {
            graph: name.into(),
            request: FloodRequest {
                source_sets: vec![vec![0]],
                engine: "sharded:2:bfs".into(),
                max_rounds: 0,
            },
        },
    ]
}

#[test]
fn concurrent_clients_get_bit_identical_answers_and_shutdown_drains() {
    let server = Server::new(4096);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));

        // Four concurrent clients, each on its own graph so the mutate
        // interleavings cannot affect each other's answers.
        let specs = [
            GraphSpec::Grid { rows: 12, cols: 13 },
            GraphSpec::Cycle { n: 200 },
            GraphSpec::Lollipop { k: 9, p: 30 },
            GraphSpec::SparseConnected {
                n: 150,
                extra: 80,
                seed: 11,
            },
        ];
        let workers: Vec<_> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                scope.spawn(move || {
                    let name = format!("g{i}");
                    // The in-process reference: the same requests against
                    // a private registry, no sockets involved.
                    let reference = Registry::new();
                    let mut client = Client::connect(addr);
                    for request in script(&name, spec) {
                        let expected =
                            serde_json::to_string(&reference.execute(&request)).expect("serialize");
                        let wire = client.send(&request);
                        assert_eq!(wire, expected, "{request:?}");
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("client");
        }

        // Robustness on a live connection: garbage, truncated JSON, an
        // oversized line — each answered with a structured error, and
        // the same connection keeps working afterwards.
        let mut client = Client::connect(addr);
        for (garbage, want) in [
            ("not json", code::BAD_REQUEST),
            ("{\"Predict\": {\"graph\": \"g0\"", code::BAD_REQUEST),
            (&"x".repeat(5000), code::OVERSIZED),
        ] {
            let resp: Response = serde_json::from_str(&client.send_raw(garbage)).expect("parse");
            let Response::Error(err) = resp else {
                panic!(
                    "expected error for {:?}..., got {resp:?}",
                    &garbage[..16.min(garbage.len())]
                );
            };
            assert_eq!(err.code, want);
        }
        let resp: Response = serde_json::from_str(&client.send(&Request::Predict {
            graph: "g2".into(),
            source_sets: vec![vec![3]],
        }))
        .expect("parse");
        assert!(
            matches!(resp, Response::Predicted { .. }),
            "connection survives garbage: {resp:?}"
        );

        // Stats sees all four graphs and a live error count.
        let resp: Response = serde_json::from_str(&client.send(&Request::Stats)).expect("parse");
        let Response::Stats(stats) = resp else {
            panic!("expected stats, got {resp:?}");
        };
        let names: Vec<&str> = stats.graphs.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, ["g0", "g1", "g2", "g3"]);
        assert_eq!(stats.errors, 3);
        assert!(stats.graphs.iter().all(|g| g.mutations == 1));
        // The PR-8 stats extension: totals and per-verb counts ride
        // along without disturbing the original fields above.
        assert_eq!(stats.requests_total, stats.requests);
        let verb_count = |name: &str| {
            stats
                .verbs
                .iter()
                .find(|v| v.verb == name)
                .expect("every verb has a row")
                .count
        };
        assert_eq!(verb_count("Gen"), 4, "one Gen per worker");
        assert_eq!(
            verb_count("Predict"),
            9,
            "two per worker, plus one after garbage"
        );
        assert_eq!(verb_count("Batch"), 8);
        assert_eq!(verb_count("Shutdown"), 0);

        // Metrics: the full snapshot, over the same connection.
        let resp: Response = serde_json::from_str(&client.send(&Request::Metrics)).expect("parse");
        let Response::Metrics(report) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        assert_eq!(report.errors_total, 3);
        assert!(report.connections >= 5, "four workers plus this client");
        assert!(report.bytes_read > 0 && report.bytes_written > 0);
        assert!(report.registry_bytes > 0, "four graphs are resident");
        let predict = report.verbs.iter().find(|v| v.verb == "Predict").unwrap();
        assert_eq!(predict.count, 9);
        assert!(predict.max_us > 0, "index builds take measurable time");
        // The PR-9 fields: this server is unbounded, bare requests never
        // touch the pool, and nothing has been evicted yet.
        assert_eq!(report.registry_budget_bytes, 0);
        assert_eq!(report.evictions_total, 0);
        assert_eq!(report.pool_workers, 4, "the default pool");
        assert_eq!(report.pool_depth, 0);
        assert_eq!(report.pool_jobs_total, 0);
        assert_eq!(report.predict_indexes, 4, "every graph ends indexed");

        // Eviction updates the gauges *eagerly*: `Metrics` is a pure
        // read of the counters, so the numbers must already be right the
        // instant `Evict` answers — no report-time registry walk to
        // paper over a stale gauge (the PR-9 regression).
        let before = report;
        let resp: Response =
            serde_json::from_str(&client.send(&Request::Evict { graph: "g3".into() }))
                .expect("parse");
        let Response::Evicted {
            name,
            bytes_freed,
            index_dropped,
        } = resp
        else {
            panic!("expected Evicted, got {resp:?}");
        };
        assert_eq!(name, "g3");
        assert!(index_dropped, "g3's post-mutate Predict left an index");
        assert!(bytes_freed > 0);
        let resp: Response = serde_json::from_str(&client.send(&Request::Metrics)).expect("parse");
        let Response::Metrics(after) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        assert_eq!(after.registry_bytes, before.registry_bytes - bytes_freed);
        assert_eq!(after.evictions_total, 1);
        assert_eq!(after.predict_indexes, 3);
        // A registered-then-evicted name is `not_found`, distinct from
        // the never-registered `unknown_graph`.
        let resp: Response = serde_json::from_str(&client.send(&Request::Flood {
            graph: "g3".into(),
            sources: vec![0],
            engine: String::new(),
            max_rounds: 0,
        }))
        .expect("parse");
        let Response::Error(err) = resp else {
            panic!("expected not_found, got {resp:?}");
        };
        assert_eq!(err.code, code::NOT_FOUND);

        // Shutdown: acknowledged, drained, and the accept loop returns.
        let ack = client.send(&Request::Shutdown);
        assert_eq!(ack, "\"ShuttingDown\"");
        // The drain is the real proof of shutdown: serve_tcp only
        // returns once the accept loop stopped AND every connection
        // thread (this client's included) has exited.
        serving.join().expect("server thread").expect("serve_tcp");
        assert!(server.is_shutting_down());
    });
}

#[test]
fn post_shutdown_requests_on_open_connections_are_refused() {
    let server = Server::default();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve_tcp(&listener));
        let mut early = Client::connect(addr);
        let resp = early.send(&Request::Gen {
            name: "g".into(),
            spec: GraphSpec::Petersen,
        });
        assert!(resp.starts_with("{\"Registered\""), "{resp}");

        let mut closer = Client::connect(addr);
        assert_eq!(closer.send(&Request::Shutdown), "\"ShuttingDown\"");

        // The still-open first connection either gets a structured
        // shutting_down refusal or a clean close — never a hang and
        // never a served request.
        early.stream.write_all(b"\"Stats\"\n").expect("write");
        early.stream.flush().expect("flush");
        let mut line = String::new();
        let n = early.reader.read_line(&mut line).expect("read");
        if n > 0 {
            let resp: Response = serde_json::from_str(line.trim_end()).expect("parse");
            let Response::Error(err) = resp else {
                panic!("expected refusal, got {resp:?}");
            };
            assert_eq!(err.code, code::SHUTTING_DOWN);
        }
        serving.join().expect("server thread").expect("serve_tcp");
    });
}
